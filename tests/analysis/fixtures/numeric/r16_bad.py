"""R16 fixture: bare float folds inside aggregate entry points."""


class NaiveRunningSum(AggregateFunction):
    """BUG: compensated discipline, but every fold is a bare accumulation."""

    __numeric__ = "compensated"

    def create(self):
        """Accumulator: [total, count]."""
        return [0.0, 0]

    def add(self, acc, value):
        """One bare fold plus two exempt integer updates."""
        acc[0] += value  # R16: bare float fold
        acc[1] += 1  # exempt: integer constant
        self._calls += 1.0  # exempt: integral float literal
        return acc

    def add_many(self, acc, values):
        """Long-hand spelling of the same fold, plus an exempt len()."""
        acc[0] = acc[0] + python_sum(values)  # R16: long-hand fold
        acc[1] += len(values)  # exempt: len() cannot lose precision
        return acc

    def merge(self, left, right):
        """Merging two partials is a fold too."""
        left[0] += right[0]  # R16: bare merge fold
        left[1] += right[1]  # R16: subscript operand is not exempt
        return left


class WaivedRunningSum(AggregateFunction):
    """A waived fold is conceded, not flagged (NumSan holds the budget)."""

    __numeric__ = "reassoc-tolerant"

    def add(self, acc, value):
        """The waiver concedes reassociation on this line."""
        acc[0] += value  # repro: numeric=reassoc - drift budget held by NumSan
        return acc


class ExactCounter(AggregateFunction):
    """Exact classes are exempt: they promise no float accumulation."""

    __numeric__ = "exact"

    def add(self, acc, value):
        """Folds weights, but the exact discipline routes around R16."""
        acc[0] += weight_of(value)  # not flagged: __numeric__ = "exact"
        return acc
