"""R18 fixture: accumulated floats compared through floats_close."""

from repro.core.numeric import floats_close


def totals_agree(left, right):
    """Tolerance-aware comparison of two accumulated sums."""
    return floats_close(left.window_sum, right.window_sum)


def window_matches(aggregate, window, expected):
    """Extracted results go through the same tolerance."""
    return floats_close(aggregate.result(window), expected)


def count_is_empty(self):
    """Integer comparisons remain ordinary equality."""
    return self._count == 0
