"""R17 fixture: subtraction-based eviction from retained float state."""


class DriftingSlidingTotal(AggregateFunction):
    """BUG: evicts windows by subtracting elements back out."""

    __numeric__ = "compensated"

    def __init__(self):
        self._total = 0.0
        self._mass = 0.0
        self._count = 0

    def evict(self, acc, old):
        """Residual rounding error survives every retraction."""
        acc[0] -= old  # R17: subtractive retraction
        self._mass -= old * 0.5  # R17: retained attribute state
        self._count -= 1  # exempt: integer constant
        self._count -= len(acc)  # exempt: len() is exact
