"""R19 fixture: declared locally or inherited from an annotated base."""


class AnnotatedBase(AggregateFunction):
    """Declares the protocol-wide default."""

    __numeric__ = "exact"

    def create(self):
        """Accumulator factory."""
        return 0


class InheritingChild(AnnotatedBase):
    """Inherits "exact" from AnnotatedBase — nothing to flag."""

    def describe(self):
        """Covered by the nearest declared ancestor."""
        return "child"


class LocallyDeclared(ErrorModel):
    """Declares its own discipline."""

    __numeric__ = "reassoc-tolerant"

    def update(self, sample):
        """EWMA-style state: reassociation is deliberate."""
        return sample
