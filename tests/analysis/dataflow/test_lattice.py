"""Unit tests for the time-domain lattice and the inference machinery."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.dataflow import analyse
from repro.analysis.dataflow.lattice import (
    Domain,
    Violation,
    add,
    compare,
    domain_of_name,
    join,
    join_all,
    sub,
)
from repro.analysis.lint.model import Project, SourceFile


def project_of(text: str, path: str = "engine/mod.py", tmp_path=None) -> Project:
    """Build a one-file project from inline source."""
    file = tmp_path / path
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(text, encoding="utf-8")
    return Project([SourceFile.load(file, root=tmp_path)])


# --------------------------------------------------------------------- #
# lattice algebra


def test_join_is_flat_with_top_conflicts():
    assert join(Domain.BOTTOM, Domain.EVENT_TIME) is Domain.EVENT_TIME
    assert join(Domain.EVENT_TIME, Domain.EVENT_TIME) is Domain.EVENT_TIME
    assert join(Domain.EVENT_TIME, Domain.PROC_TIME) is Domain.TOP
    assert join_all([]) is Domain.BOTTOM
    assert join_all([Domain.DURATION, Domain.BOTTOM]) is Domain.DURATION


def test_add_transfer_function():
    domain, violation = add(Domain.EVENT_TIME, Domain.DURATION)
    assert domain is Domain.EVENT_TIME and violation is None
    domain, violation = add(Domain.EVENT_TIME, Domain.EVENT_TIME)
    assert violation is Violation.INSTANT_PLUS_INSTANT
    domain, violation = add(Domain.EVENT_TIME, Domain.PROC_TIME)
    assert violation is Violation.INSTANT_PLUS_INSTANT
    # Unknown operands never flag.
    assert add(Domain.BOTTOM, Domain.EVENT_TIME)[1] is None
    assert add(Domain.TOP, Domain.EVENT_TIME)[1] is None


def test_sub_transfer_function():
    # Cross-axis instant subtraction IS the delay — allowed, a duration.
    domain, violation = sub(Domain.PROC_TIME, Domain.EVENT_TIME)
    assert domain is Domain.DURATION and violation is None
    domain, violation = sub(Domain.EVENT_TIME, Domain.DURATION)
    assert domain is Domain.EVENT_TIME and violation is None
    _, violation = sub(Domain.DURATION, Domain.EVENT_TIME)
    assert violation is Violation.DURATION_VS_INSTANT


def test_compare_transfer_function():
    assert compare(Domain.EVENT_TIME, Domain.EVENT_TIME) is None
    assert (
        compare(Domain.EVENT_TIME, Domain.PROC_TIME)
        is Violation.CROSS_AXIS_COMPARE
    )
    assert (
        compare(Domain.DURATION, Domain.EVENT_TIME)
        is Violation.DURATION_VS_INSTANT
    )
    assert compare(Domain.BOTTOM, Domain.EVENT_TIME) is None
    assert compare(Domain.COUNT, Domain.EVENT_TIME) is None


def test_naming_conventions():
    assert domain_of_name("event_time") is Domain.EVENT_TIME
    assert domain_of_name("_close_frontier") is Domain.EVENT_TIME
    assert domain_of_name("arrival_time") is Domain.PROC_TIME
    assert domain_of_name("slack") is Domain.DURATION
    assert domain_of_name("window_size") is Domain.DURATION
    assert domain_of_name("released_count") is Domain.COUNT
    assert domain_of_name("payload") is Domain.BOTTOM


# --------------------------------------------------------------------- #
# propagation: evidence must flow across function boundaries


def test_domains_propagate_through_calls(tmp_path):
    project = project_of(
        """
def source(element):
    shifted = element.event_time
    return consume(shifted)

def consume(position):
    return position
""",
        tmp_path=tmp_path,
    )
    result = analyse(project)
    consume = next(
        f for f in result.table.functions.values() if f.simple_name == "consume"
    )
    # 'position' has no naming convention; its domain arrives from the
    # call site and its return feeds back.
    assert consume.param_domains["position"] is Domain.EVENT_TIME
    assert consume.return_domain is Domain.EVENT_TIME


def test_annotation_markers_beat_naming_conventions(tmp_path):
    project = project_of(
        """
from typing import Annotated

class Duration:
    pass

def hold(frontier: Annotated[float, Duration]):
    return frontier
""",
        tmp_path=tmp_path,
    )
    result = analyse(project)
    hold = next(
        f for f in result.table.functions.values() if f.simple_name == "hold"
    )
    # The explicit marker overrides the 'frontier' naming convention.
    assert hold.param_domains["frontier"] is Domain.DURATION


def test_attribute_domains_seed_from_init(tmp_path):
    project = project_of(
        """
class Tracker:
    def __init__(self, element):
        self._latest = element.event_time

    def read(self):
        return self._latest
""",
        tmp_path=tmp_path,
    )
    result = analyse(project)
    tracker = result.table.classes["Tracker"]
    # '_latest' has no convention; the domain comes from the assignment.
    assert tracker.attr_domains["_latest"] is Domain.EVENT_TIME


def test_call_graph_records_resolved_edges(tmp_path):
    project = project_of(
        """
def outer():
    return inner()

def inner():
    return 1
""",
        tmp_path=tmp_path,
    )
    result = analyse(project)
    (outer_qual,) = [
        q for q in result.table.functions if q.endswith(":outer")
    ]
    (inner_qual,) = [
        q for q in result.table.functions if q.endswith(":inner")
    ]
    assert inner_qual in result.graph.callees(outer_qual)
    assert inner_qual in result.graph.reachable_from(outer_qual)


def test_analysis_converges_and_reports_rounds(tmp_path):
    project = project_of("def noop():\n    return None\n", tmp_path=tmp_path)
    result = analyse(project)
    assert 1 <= result.rounds <= 10


def test_scaling_arithmetic_never_flags(tmp_path):
    # index * slide is window-index math; multiplication must stay silent
    # even though the operands cross domains.
    project = project_of(
        """
class Assigner:
    def __init__(self, slide):
        self.slide = slide

    def start_of(self, index):
        return index * self.slide
""",
        tmp_path=tmp_path,
    )
    result = analyse(project)
    assert result.violations == []
