"""R06 fixture: cross-domain arithmetic and comparisons (violations)."""


class WindowPlanner:
    """Two classic slips: instant+instant and a cross-axis ordering."""

    def misplaced_midpoint(self, event_time, other_event_time):
        """VIOLATION: adding two event-time instants."""
        return (event_time + other_event_time) / 2.0

    def compare_axes(self, event_time, arrival_time):
        """VIOLATION: ordering event time against processing time."""
        return event_time < arrival_time
