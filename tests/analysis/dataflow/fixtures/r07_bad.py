"""R07 fixture: every shape of frontier-contract violation."""


class MonotoneFrontier:
    """Stub of the engine's frontier store (recognized by simple name)."""

    def __init__(self):
        self._value = float("-inf")

    @property
    def value(self):
        """Current frontier."""
        return self._value

    def advance(self, candidate):
        """Clamped advance."""
        if candidate > self._value:
            self._value = candidate
        return self._value


class DisorderHandler:
    """Stub of the engine ABC so the fixture set is self-contained."""


class ClockAdvancingHandler(DisorderHandler):
    """VIOLATION: advances the frontier from a processing-time value."""

    def __init__(self):
        self._front = MonotoneFrontier()

    def offer(self, element):
        """Feeds the arrival clock into an event-time frontier."""
        self._front.advance(element.arrival_time)
        return [element]


class RebindingHandler(DisorderHandler):
    """VIOLATION: replaces its frontier store outside __init__."""

    def __init__(self):
        self._front = MonotoneFrontier()

    def flush(self):
        """Resetting the store forgets its monotonicity history."""
        self._front = MonotoneFrontier()
        return []


class RawWriteHandler(DisorderHandler):
    """VIOLATION: writes the store's internal field directly."""

    def __init__(self):
        self._front = MonotoneFrontier()

    def offer(self, element):
        """Bypasses the advance clamp entirely."""
        self._front._value = element.event_time
        return [element]


class ArrivalFrontierHandler(DisorderHandler):
    """VIOLATION: frontier property reports a processing-time value."""

    def __init__(self):
        self._last_arrival = 0.0

    @property
    def frontier(self):
        """Claims an event-time contract but returns arrival time."""
        return self._last_arrival
