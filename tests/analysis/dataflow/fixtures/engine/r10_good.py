"""R10 fixture: the same APIs carrying the timebase aliases (no findings)."""

from repro.streams.timebase import DurationS, EventTimeStamp


class FixedLagPolicy:
    """Domain-marked signatures satisfy the rule."""

    def __init__(self, lag: DurationS) -> None:
        """The Annotated alias names the domain; mypy still sees float."""
        self.lag = lag

    @property
    def frontier(self) -> EventTimeStamp:
        """Marked event-time return."""
        return 0.0


def shift(event_time: EventTimeStamp, delay: DurationS) -> EventTimeStamp:
    """Marked parameters and return."""
    return event_time + delay


def scale(value: float, factor: float) -> float:
    """Bare float is fine for identifiers with no time-name convention."""
    return value * factor
