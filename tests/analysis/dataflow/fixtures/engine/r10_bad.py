"""R10 fixture: public time-typed APIs annotated with bare float."""


class FixedLagPolicy:
    """Time-named signatures without domain markers."""

    def __init__(self, lag: float) -> None:
        """VIOLATION: lag is a duration but annotated bare float."""
        self.lag = lag

    @property
    def frontier(self) -> float:
        """VIOLATION: frontier return is an event-time instant."""
        return 0.0


def shift(event_time: float, delay: float) -> float:
    """VIOLATIONS: both parameters are time-typed bare floats."""
    return event_time + delay
