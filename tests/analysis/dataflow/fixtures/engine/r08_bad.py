"""R08 fixture: duration/timestamp mixing in slack math (engine scope)."""


class KSlackPolicy:
    """Swapped-operand slips in the release-threshold computation."""

    def __init__(self, k):
        self.k = k

    def overdue_by(self, frontier):
        """VIOLATION: duration minus instant (operands swapped)."""
        return self.k - frontier

    def should_release(self, frontier):
        """VIOLATION: slack duration ordered against the frontier instant."""
        return self.k < frontier
