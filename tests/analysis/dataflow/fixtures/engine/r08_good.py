"""R08 fixture: correctly-anchored slack math (no findings)."""


class KSlackPolicy:
    """The canonical K-slack release computation."""

    def __init__(self, k):
        self.k = k

    def release_threshold(self, frontier):
        """Instant minus duration stays an instant: frontier - K."""
        return frontier - self.k

    def should_release(self, event_time, frontier):
        """Instants compared on the same axis."""
        return event_time <= frontier - self.k
