"""R06 fixture: legitimate time arithmetic the analysis must not flag."""


class DelayMath:
    """Every sanctioned shape of mixing the domains."""

    def delay_of(self, arrival_time, event_time):
        """Instant - instant (even cross-axis) is a duration: the delay."""
        return arrival_time - event_time

    def shifted(self, event_time, slack):
        """Instant + duration shifts along the same axis."""
        return event_time + slack

    def is_late(self, event_time, watermark):
        """Ordering two event-time instants is fine."""
        return event_time < watermark

    def budget_left(self, slack, delay):
        """Duration arithmetic stays in the duration domain."""
        return slack - delay
