"""R09 fixture: domain-consistent RunMetrics usage (no findings)."""


class RunMetrics:
    """Stub of the engine's metrics record (recognized by simple name)."""

    n_elements: int = 0
    wall_time_s: float = 0.0


def capture(first_arrival, last_arrival, n_elements):
    """Durations into duration fields, counts into count fields."""
    metrics = RunMetrics()
    metrics.wall_time_s = last_arrival - first_arrival
    metrics.n_elements = n_elements
    return metrics
