"""R09 fixture: RunMetrics fields assigned values from the wrong domain."""


class RunMetrics:
    """Stub of the engine's metrics record (recognized by simple name)."""

    n_elements: int = 0
    wall_time_s: float = 0.0


def capture(event_time):
    """VIOLATIONS: an event-time instant lands in duration/count fields."""
    metrics = RunMetrics()
    metrics.wall_time_s = event_time
    metrics.n_elements = event_time
    return metrics


def capture_ctor(frontier):
    """VIOLATION: event-time instant passed as the wall-time duration."""
    return RunMetrics(wall_time_s=frontier)
