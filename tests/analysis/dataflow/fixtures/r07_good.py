"""R07 fixture: a contract-conforming handler the analysis must not flag."""


class MonotoneFrontier:
    """Stub of the engine's frontier store (recognized by simple name)."""

    def __init__(self):
        self._value = float("-inf")

    @property
    def value(self):
        """Current frontier."""
        return self._value

    def advance(self, candidate):
        """Clamped advance."""
        if candidate > self._value:
            self._value = candidate
        return self._value

    def close(self):
        """End of stream."""
        self._value = float("inf")
        return self._value


class DisorderHandler:
    """Stub of the engine ABC so the fixture set is self-contained."""


class ConformingHandler(DisorderHandler):
    """Advances only through the store, only from event-time values."""

    def __init__(self, k):
        self.k = k
        self._front = MonotoneFrontier()

    def offer(self, element):
        """Shifts the element's event time by the slack duration."""
        self._front.advance(element.event_time - self.k)
        return [element]

    def flush(self):
        """Closes via the sanctioned method instead of a raw write."""
        self._front.close()
        return []

    @property
    def frontier(self):
        """Reports the store's event-time value."""
        return self._front.value
