"""R06-R10 must catch their bad fixtures and pass their good ones."""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[3] / "src"


def findings_for(fixture: str, rule: str):
    """Lint one fixture file with a single rule selected."""
    return run_lint([FIXTURES / fixture], select=[rule])


# --------------------------------------------------------------------- #
# R06 — cross-domain arithmetic/comparison


def test_r06_catches_cross_domain_mixing():
    findings = findings_for("r06_bad.py", "R06")
    assert {f.rule for f in findings} == {"R06"}
    messages = " ".join(f.message for f in findings)
    assert "adding two time instants" in messages
    assert "mixes time axes" in messages
    assert len(findings) == 2


def test_r06_allows_sanctioned_time_arithmetic():
    assert findings_for("r06_good.py", "R06") == []


# --------------------------------------------------------------------- #
# R07 — frontier contract


def test_r07_catches_every_contract_violation_shape():
    findings = findings_for("r07_bad.py", "R07")
    messages = sorted(f.message for f in findings)
    assert any("proc-time" in m and "advance" in m.lower() for m in messages)
    assert any("rebound outside __init__" in m for m in messages)
    assert any("raw write" in m for m in messages)
    assert any("frontier contract requires an event-time" in m for m in messages)
    assert len(findings) == 4


def test_r07_allows_conforming_handler():
    assert findings_for("r07_good.py", "R07") == []


# --------------------------------------------------------------------- #
# R08 — slack math (engine scoped)


def test_r08_catches_duration_instant_mixing():
    findings = findings_for("engine/r08_bad.py", "R08")
    assert len(findings) == 2
    assert all("duration" in f.message for f in findings)


def test_r08_allows_anchored_slack_math():
    assert findings_for("engine/r08_good.py", "R08") == []


def test_r08_is_engine_scoped(tmp_path):
    unscoped = tmp_path / "r08_unscoped.py"
    unscoped.write_text(
        (FIXTURES / "engine" / "r08_bad.py").read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    assert run_lint([unscoped], select=["R08"]) == []


# --------------------------------------------------------------------- #
# R09 — RunMetrics domains


def test_r09_catches_wrong_domain_metrics():
    findings = findings_for("r09_bad.py", "R09")
    assert len(findings) == 3
    messages = " ".join(f.message for f in findings)
    assert "wall_time_s" in messages
    assert "n_elements" in messages


def test_r09_allows_consistent_metrics():
    assert findings_for("r09_good.py", "R09") == []


# --------------------------------------------------------------------- #
# R10 — unannotated public time APIs (engine scoped)


def test_r10_catches_bare_float_time_signatures():
    findings = findings_for("engine/r10_bad.py", "R10")
    assert len(findings) == 4
    messages = " ".join(f.message for f in findings)
    assert "DurationS" in messages
    assert "EventTimeStamp" in messages


def test_r10_allows_marked_signatures():
    assert findings_for("engine/r10_good.py", "R10") == []


# --------------------------------------------------------------------- #
# seeded-bug demos: mutate the REAL engine sources and watch the rules fire


def test_seeded_proc_time_frontier_advance_is_caught_by_r07(tmp_path):
    source = (REPO_SRC / "repro" / "engine" / "handlers.py").read_text(
        encoding="utf-8"
    )
    buggy = "self._front.advance(self._clock.value - self.k)"
    assert buggy in source  # the mutation target must exist
    mutated = source.replace(
        buggy, "self._front.advance(element.arrival_time)"
    )
    target = tmp_path / "engine" / "handlers.py"
    target.parent.mkdir()
    target.write_text(mutated, encoding="utf-8")
    findings = run_lint([target], select=["R07"])
    assert findings, "R07 must catch a frontier advanced from arrival time"
    assert all("proc-time" in f.message for f in findings)


def test_unmutated_handlers_pass_r07(tmp_path):
    target = tmp_path / "engine" / "handlers.py"
    target.parent.mkdir()
    target.write_text(
        (REPO_SRC / "repro" / "engine" / "handlers.py").read_text(
            encoding="utf-8"
        ),
        encoding="utf-8",
    )
    assert run_lint([target], select=["R07"]) == []


def test_seeded_instant_addition_is_caught_by_r06(tmp_path):
    source = (REPO_SRC / "repro" / "engine" / "session_op.py").read_text(
        encoding="utf-8"
    )
    sane = "element.event_time + self.gap"
    assert sane in source
    mutated = source.replace(sane, "element.event_time + self._close_frontier")
    target = tmp_path / "engine" / "session_op.py"
    target.parent.mkdir()
    target.write_text(mutated, encoding="utf-8")
    findings = run_lint([target], select=["R06"])
    assert findings, "R06 must catch event_time + frontier"
    assert all("adding two time instants" in f.message for f in findings)


# --------------------------------------------------------------------- #
# whole-program run: clean and fast


def test_source_tree_is_dataflow_clean_and_fast():
    started = time.perf_counter()
    findings = run_lint([REPO_SRC], select=["R06", "R07", "R08", "R09", "R10"])
    elapsed = time.perf_counter() - started
    assert findings == []
    assert elapsed < 5.0, f"whole-program analysis took {elapsed:.2f}s"
