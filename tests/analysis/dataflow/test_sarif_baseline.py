"""SARIF reporter shape, baseline mechanics, and the extended CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.lint import expand_rule_ids, run_lint
from repro.analysis.lint.__main__ import main as lint_main
from repro.analysis.lint.model import Finding
from repro.analysis.dataflow.baseline import Baseline, finding_fingerprint
from repro.analysis.dataflow.sarif import sarif_report
from repro.errors import ConfigurationError

FIXTURES = Path(__file__).parent / "fixtures"


def _findings():
    return run_lint([FIXTURES / "r06_bad.py"], select=["R06"])


# --------------------------------------------------------------------- #
# SARIF 2.1.0 shape


def test_sarif_report_matches_2_1_0_shape():
    report = sarif_report(_findings(), {"R06": "cross-domain mixing"})
    assert report["version"] == "2.1.0"
    assert report["$schema"].endswith("sarif-2.1.0.json")
    (run,) = report["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert any(rule["id"] == "R06" for rule in driver["rules"])
    assert run["results"], "findings must be emitted as results"
    for result in run["results"]:
        assert result["ruleId"] == "R06"
        assert result["level"] == "error"
        assert result["message"]["text"]
        (location,) = result["locations"]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"].endswith("r06_bad.py")
        assert physical["region"]["startLine"] >= 1
        assert physical["region"]["startColumn"] >= 1
        assert result["partialFingerprints"]["reproLint/v1"]


def test_sarif_report_is_json_serializable():
    json.dumps(sarif_report(_findings()))


# --------------------------------------------------------------------- #
# baseline


def test_baseline_filters_known_findings():
    findings = _findings()
    baseline = Baseline.from_findings(findings)
    assert baseline.apply(findings) == []


def test_baseline_absorbs_at_most_recorded_count():
    finding = _findings()[0]
    baseline = Baseline.from_findings([finding])
    # A second identical occurrence exceeds the grandfathered budget.
    assert baseline.apply([finding, finding]) == [finding]


def test_baseline_reports_stale_entries():
    findings = _findings()
    baseline = Baseline.from_findings(findings)
    assert baseline.stale_entries(findings) == []
    stale = baseline.stale_entries([])
    assert sorted(stale) == sorted(baseline.entries)


def test_baseline_roundtrips_through_disk(tmp_path):
    findings = _findings()
    baseline = Baseline.from_findings(findings)
    path = tmp_path / "analysis" / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.entries == baseline.entries
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert payload["tool"] == "repro-lint"


def test_fingerprint_is_line_drift_resistant():
    a = Finding(rule="R06", path="x.py", line=3, col=1, message="boom")
    b = Finding(rule="R06", path="x.py", line=33, col=9, message="boom")
    c = Finding(rule="R06", path="x.py", line=3, col=1, message="other")
    assert finding_fingerprint(a) == finding_fingerprint(b)
    assert finding_fingerprint(a) != finding_fingerprint(c)


def test_run_lint_applies_baseline_argument():
    findings = _findings()
    baseline = Baseline.from_findings(findings)
    assert (
        run_lint([FIXTURES / "r06_bad.py"], select=["R06"], baseline=baseline)
        == []
    )


# --------------------------------------------------------------------- #
# rule-range expansion and the CLI


def test_rule_range_expansion():
    assert expand_rule_ids("R06-R10") == ["R06", "R07", "R08", "R09", "R10"]
    assert expand_rule_ids("r01,R03") == ["R01", "R03"]
    assert expand_rule_ids("R01,R06-R07") == ["R01", "R06", "R07"]
    with pytest.raises(ConfigurationError):
        expand_rule_ids("R10-R06")
    with pytest.raises(ConfigurationError):
        expand_rule_ids("Rxx-R09")


def test_cli_accepts_rule_ranges(capsys):
    bad = str(FIXTURES / "r06_bad.py")
    assert lint_main(["--rules", "R06-R10", "--no-baseline", bad]) == 1
    assert lint_main(["--rules", "R07-R10", "--no-baseline", bad]) == 0
    capsys.readouterr()


def test_cli_sarif_output(tmp_path, capsys):
    out = tmp_path / "lint.sarif"
    status = lint_main(
        [
            "--rules",
            "R06",
            "--format",
            "sarif",
            "--no-baseline",
            "--output",
            str(out),
            str(FIXTURES / "r06_bad.py"),
        ]
    )
    assert status == 1
    report = json.loads(out.read_text(encoding="utf-8"))
    assert report["version"] == "2.1.0"
    assert report["runs"][0]["results"]
    capsys.readouterr()


def test_cli_baseline_workflow(tmp_path, capsys):
    bad = str(FIXTURES / "r06_bad.py")
    baseline_path = tmp_path / "baseline.json"
    # 1. capture the current debt
    assert (
        lint_main(
            ["--rules", "R06", "--write-baseline", "--baseline", str(baseline_path), bad]
        )
        == 0
    )
    assert baseline_path.exists()
    # 2. with the baseline applied the same findings no longer fail
    assert (
        lint_main(["--rules", "R06", "--baseline", str(baseline_path), bad]) == 0
    )
    # 3. without it they still do
    assert lint_main(["--rules", "R06", "--no-baseline", bad]) == 1
    # 4. stale entries fail the --check-baseline gate (fix the findings by
    #    linting a clean file against the stale baseline)
    good = str(FIXTURES / "r06_good.py")
    assert (
        lint_main(
            [
                "--rules",
                "R06",
                "--check-baseline",
                "--baseline",
                str(baseline_path),
                good,
            ]
        )
        == 1
    )
    capsys.readouterr()
