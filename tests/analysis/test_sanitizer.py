"""Each StreamSan checker must catch its deliberately buggy component."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitizer import (
    SanitizerConfig,
    SanitizingHandler,
    SanitizingOperator,
    sanitize_operator,
)
from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import make_aggregate
from repro.engine.handlers import DisorderHandler, KSlackHandler, NoBufferHandler
from repro.engine.operator import Operator, WindowResult
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner, Window
from repro.errors import ConfigurationError, SanitizerError
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.generators import generate_stream
from repro.streams.element import StreamElement


def element(event: float, arrival: float, seq: int) -> StreamElement:
    """One keyless element with explicit timestamps."""
    return StreamElement(event_time=event, value=1.0, arrival_time=arrival, seq=seq)


def small_stream():
    """A short disordered stream shared by the integration checks."""
    rng = np.random.default_rng(5)
    return inject_disorder(
        generate_stream(duration=12, rate=40, rng=rng), ExponentialDelay(0.3), rng
    )


def make_operator(handler: DisorderHandler) -> WindowAggregateOperator:
    """Sliding mean operator over the given handler."""
    return WindowAggregateOperator(
        SlidingWindowAssigner(size=2, slide=1), make_aggregate("mean"), handler
    )


# --------------------------------------------------------------------- #
# deliberately buggy handlers


class FrontierRegressingHandler(DisorderHandler):
    """BUG: the frontier moves backwards on every offer."""

    name = "bad-frontier"

    def __init__(self) -> None:
        self._offers = 0

    def offer(self, element: StreamElement) -> list[StreamElement]:
        """Release immediately while the frontier regresses."""
        self._offers += 1
        return [element]

    def flush(self) -> list[StreamElement]:
        """Nothing buffered."""
        return []

    @property
    def frontier(self) -> float:
        """Decreases with every offer — a contract violation."""
        return -float(self._offers)


class NaNFrontierHandler(DisorderHandler):
    """BUG: reports a NaN frontier."""

    name = "nan-frontier"

    def offer(self, element: StreamElement) -> list[StreamElement]:
        """Release immediately."""
        return [element]

    def flush(self) -> list[StreamElement]:
        """Nothing buffered."""
        return []

    @property
    def frontier(self) -> float:
        """NaN poisons every downstream window comparison."""
        return float("nan")


class HoardingHandler(DisorderHandler):
    """BUG: advances the frontier past elements it still buffers."""

    name = "hoarder"

    def __init__(self) -> None:
        self._held: list[StreamElement] = []
        self._max_event = float("-inf")

    def offer(self, element: StreamElement) -> list[StreamElement]:
        """Buffer everything while claiming the newest event as frontier."""
        self._held.append(element)
        self._max_event = max(self._max_event, element.event_time)
        return []

    def flush(self) -> list[StreamElement]:
        """Release at the very end only."""
        held, self._held = self._held, []
        return held

    @property
    def frontier(self) -> float:
        return self._max_event


class SwallowingHandler(DisorderHandler):
    """BUG: drops elements instead of releasing them, even at flush."""

    name = "swallower"

    def offer(self, element: StreamElement) -> list[StreamElement]:
        """Swallow the element."""
        return []

    def flush(self) -> list[StreamElement]:
        """The swallowed elements are gone."""
        return []

    @property
    def frontier(self) -> float:
        """Frontier stays unset so the per-offer release check passes."""
        return float("-inf")


class BadCheckpointHandler(DisorderHandler):
    """BUG: offer_many returns one checkpoint regardless of batch size."""

    name = "bad-checkpoints"

    def __init__(self) -> None:
        self._front = float("-inf")

    def offer(self, element: StreamElement) -> list[StreamElement]:
        """Release immediately."""
        self._front = max(self._front, element.event_time)
        return [element]

    def offer_many(self, elements):
        """Checkpoint count does not match the offered batch."""
        released = []
        for item in elements:
            released.extend(self.offer(item))
        return released, [(len(released), self.frontier)]

    def flush(self) -> list[StreamElement]:
        """Nothing buffered."""
        return []

    @property
    def frontier(self) -> float:
        return self._front


class MiscountingHandler(NoBufferHandler):
    """BUG: released_count over-reports by one."""

    name = "miscounter"

    def released_count(self) -> int:
        """One more than the truth."""
        return super().released_count() + 1


class PhantomBufferHandler(NoBufferHandler):
    """BUG: claims a buffered element although everything was released."""

    name = "phantom-buffer"

    def buffered_count(self) -> int:
        """Reports one element that does not exist."""
        return 1


# --------------------------------------------------------------------- #
# handler checker tests


def run_scalar(handler: DisorderHandler, elements) -> None:
    """Drive a sanitized handler through offers and a final flush."""
    wrapped = SanitizingHandler(handler)
    for item in elements:
        wrapped.offer(item)
    wrapped.flush()


def test_frontier_regression_is_caught():
    with pytest.raises(SanitizerError, match=r"StreamSan\[frontier\].*backwards"):
        run_scalar(
            FrontierRegressingHandler(),
            [element(1.0, 1.5, 0), element(2.0, 2.5, 1)],
        )


def test_nan_frontier_is_caught():
    with pytest.raises(SanitizerError, match=r"StreamSan\[frontier\].*NaN"):
        run_scalar(NaNFrontierHandler(), [element(1.0, 1.5, 0)])


def test_element_lingering_below_frontier_is_caught():
    with pytest.raises(SanitizerError, match=r"StreamSan\[release\].*still buffered"):
        run_scalar(HoardingHandler(), [element(1.0, 1.5, 0)])


def test_swallowed_elements_are_caught_at_flush():
    with pytest.raises(SanitizerError, match=r"StreamSan\[release\].*never released"):
        run_scalar(SwallowingHandler(), [element(1.0, 1.5, 0), element(2.0, 2.5, 1)])


def test_bad_checkpoints_are_caught():
    wrapped = SanitizingHandler(BadCheckpointHandler())
    with pytest.raises(SanitizerError, match=r"StreamSan\[checkpoints\]"):
        wrapped.offer_many([element(1.0, 1.5, 0), element(2.0, 2.5, 1)])


def test_released_count_mismatch_is_caught():
    with pytest.raises(SanitizerError, match=r"StreamSan\[accounting\].*released_count"):
        run_scalar(MiscountingHandler(), [element(1.0, 1.5, 0)])


def test_buffered_count_mismatch_is_caught():
    with pytest.raises(SanitizerError, match=r"StreamSan\[accounting\].*buffered_count"):
        run_scalar(PhantomBufferHandler(), [element(1.0, 1.5, 0)])


def test_out_of_arrival_order_input_is_caught():
    wrapped = SanitizingHandler(NoBufferHandler())
    wrapped.offer(element(1.0, 5.0, 1))
    with pytest.raises(SanitizerError, match=r"StreamSan\[input-order\]"):
        wrapped.offer(element(1.0, 2.0, 0))


def test_checkers_can_be_disabled():
    config = SanitizerConfig(check_frontier=False)
    wrapped = SanitizingHandler(FrontierRegressingHandler(), config)
    wrapped.offer(element(1.0, 1.5, 0))
    wrapped.offer(element(2.0, 2.5, 1))  # no error: frontier checker off


# --------------------------------------------------------------------- #
# deliberately buggy operators


class ScriptedOperator(Operator):
    """Emits a pre-scripted result list per process call (no handler)."""

    def __init__(self, script: list[list[WindowResult]]) -> None:
        self.script = script
        self._calls = 0

    def process(self, element: StreamElement) -> list[WindowResult]:
        """Pop the next scripted emission."""
        results = self.script[self._calls]
        self._calls += 1
        return results

    def finish(self) -> list[WindowResult]:
        """Nothing buffered."""
        return []


def result(
    start: float,
    end: float,
    emit: float,
    revision: int = 0,
    latency: float | None = None,
) -> WindowResult:
    """A window result with a consistent latency unless overridden."""
    return WindowResult(
        key=None,
        window=Window(start, end),
        value=1.0,
        count=1,
        emit_time=emit,
        latency=emit - end if latency is None else latency,
        revision=revision,
    )


def test_duplicate_emission_is_caught():
    twice = result(0.0, 1.0, 2.0)
    op = SanitizingOperator(ScriptedOperator([[twice], [twice]]))
    op.process(element(1.0, 1.5, 0))
    with pytest.raises(SanitizerError, match=r"StreamSan\[retirement\].*twice"):
        op.process(element(2.0, 2.5, 1))


def test_emission_before_frontier_is_caught():
    inner = make_operator(NoBufferHandler())
    op = SanitizingOperator(inner)
    # Inject a result for a window far beyond the current frontier.
    premature = result(0.0, 100.0, 100.5)
    with pytest.raises(SanitizerError, match=r"StreamSan\[retirement\].*frontier"):
        op._check_results([premature], flushing=False)


def test_backwards_emit_time_is_caught():
    op = SanitizingOperator(
        ScriptedOperator([[result(0.0, 1.0, 5.0)], [result(1.0, 2.0, 3.0)]])
    )
    op.process(element(1.0, 1.5, 0))
    with pytest.raises(SanitizerError, match=r"StreamSan\[retirement\].*backwards"):
        op.process(element(2.0, 2.5, 1))


def test_inconsistent_latency_is_caught():
    bad = result(0.0, 1.0, 2.0, latency=9.0)
    op = SanitizingOperator(ScriptedOperator([[bad]]))
    with pytest.raises(SanitizerError, match=r"StreamSan\[retirement\].*latency"):
        op.process(element(1.0, 1.5, 0))


class DivergentOperator(Operator):
    """BUG: the batched path emits a result the scalar path never does."""

    def process(self, element: StreamElement) -> list[WindowResult]:
        """Scalar path emits nothing."""
        return []

    def process_many(self, elements: list[StreamElement]) -> list[WindowResult]:
        """Batched path invents a result."""
        return [result(0.0, 1.0, 2.0)]

    def finish(self) -> list[WindowResult]:
        """Nothing buffered."""
        return []


def test_divergence_probe_catches_batched_scalar_drift():
    op = sanitize_operator(
        DivergentOperator(), SanitizerConfig(divergence_probe_every=1)
    )
    with pytest.raises(SanitizerError, match=r"StreamSan\[divergence\]"):
        op.process_many([element(1.0, 1.5, 0), element(2.0, 2.5, 1)])


# --------------------------------------------------------------------- #
# configuration and integration


def test_negative_probe_interval_rejected():
    with pytest.raises(ConfigurationError):
        SanitizerConfig(divergence_probe_every=-1)


def test_accounting_period_must_be_positive():
    with pytest.raises(ConfigurationError):
        SanitizerConfig(accounting_period=0)


def test_accounting_audit_every_offer_catches_miscount():
    """``accounting_period=1`` restores the audit-on-every-offer mode."""
    with pytest.raises(SanitizerError, match=r"StreamSan\[accounting\].*after offer"):
        handler = SanitizingHandler(
            MiscountingHandler(), SanitizerConfig(accounting_period=1)
        )
        handler.offer(element(1.0, 1.5, 0))


def test_probe_without_sanitize_rejected():
    with pytest.raises(ConfigurationError):
        run_pipeline(small_stream(), make_operator(KSlackHandler(0.5)),
                     sanitize_probe_every=2)


def test_sanitized_run_matches_plain_run():
    stream = small_stream()
    plain = run_pipeline(stream, make_operator(KSlackHandler(0.5)))
    checked = run_pipeline(stream, make_operator(KSlackHandler(0.5)), sanitize=True)
    assert checked.results == plain.results
    assert checked.metrics.released_count == plain.metrics.released_count


def test_sanitized_batched_run_with_probe_matches_plain_run():
    from repro.analysis.sanitizer import _results_equal

    stream = small_stream()
    plain = run_pipeline(stream, make_operator(KSlackHandler(0.5)))
    checked = run_pipeline(
        stream,
        make_operator(KSlackHandler(0.5)),
        batch_size=100,
        sanitize=True,
        sanitize_probe_every=2,
    )
    # Batched aggregate folds may differ from the scalar loop by
    # re-association rounding only; everything else must be identical.
    assert len(checked.results) == len(plain.results)
    assert all(
        _results_equal(a, b) for a, b in zip(checked.results, plain.results)
    )


def test_sanitizer_forwards_concrete_handler_attributes():
    op = SanitizingOperator(make_operator(KSlackHandler(0.75)))
    assert op.handler is not None
    assert op.handler.k == 0.75
    assert "streamsan" in op.handler.describe()


# --------------------------------------------------------------------- #
# multisource pipeline under StreamSan


def multisource_stream():
    """Two keyed, mutually skewed sources merged into one arrival stream."""
    from repro.streams.multisource import merge_streams

    rng = np.random.default_rng(13)
    sources = []
    for name, mean_delay in (("a", 0.2), ("b", 0.6)):
        ordered = generate_stream(duration=12, rate=25, rng=rng, keys=[name])
        sources.append(inject_disorder(ordered, ExponentialDelay(mean_delay), rng))
    return merge_streams(sources)


def make_multisource_operator():
    """Sliding mean over a per-source watermark handler."""
    from repro.engine.multisource import MultiSourceWatermarkHandler

    handler = MultiSourceWatermarkHandler(
        source_of=lambda e: e.key, lag=0.5, expected_sources={"a", "b"}
    )
    return WindowAggregateOperator(
        SlidingWindowAssigner(size=2, slide=1), make_aggregate("mean"), handler
    )


def test_multisource_pipeline_passes_sanitizer():
    stream = multisource_stream()
    plain = run_pipeline(stream, make_multisource_operator())
    checked = run_pipeline(stream, make_multisource_operator(), sanitize=True)
    assert checked.results == plain.results
    assert checked.metrics.released_count == plain.metrics.released_count
    assert checked.metrics.n_results > 0


def test_multisource_batched_divergence_probe_matches_scalar():
    from repro.analysis.sanitizer import _results_equal

    stream = multisource_stream()
    plain = run_pipeline(stream, make_multisource_operator())
    checked = run_pipeline(
        stream,
        make_multisource_operator(),
        batch_size=64,
        sanitize=True,
        sanitize_probe_every=3,
    )
    # The divergence probe replays every probed batch through the scalar
    # path and raises SanitizerError on any mismatch; reaching this point
    # means batched == scalar for the multisource handler.  Results may
    # differ from the plain run only by fold re-association rounding.
    assert len(checked.results) == len(plain.results)
    assert all(
        _results_equal(a, b) for a, b in zip(checked.results, plain.results)
    )


def test_multisource_sanitizer_catches_seeded_frontier_bug():
    """A regressing multisource frontier must trip the frontier checker."""
    from repro.engine.multisource import MultiSourceWatermarkHandler

    class RegressingMultiSource(MultiSourceWatermarkHandler):
        """BUG: reports a frontier that ignores the monotone store."""

        @property
        def frontier(self) -> float:
            # Recompute from live sources without the monotone clamp: when
            # a new source first speaks behind the others the raw minimum
            # moves back.
            if not self._sources:
                return float("-inf")
            return self._live_minimum() - self.lag  # repro-lint: disable=R07

    handler = RegressingMultiSource(source_of=lambda e: e.key, lag=0.5)
    operator = WindowAggregateOperator(
        SlidingWindowAssigner(size=2, slide=1), make_aggregate("mean"), handler
    )
    with pytest.raises(SanitizerError, match="frontier"):
        run_pipeline(multisource_stream(), operator, sanitize=True)
