"""Tests for the analysis layer: repro-lint rules and StreamSan checkers."""
