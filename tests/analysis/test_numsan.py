"""NumSan shadow-execution sanitizer: unit tests and pipeline mode."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.concur.stress import build_elements
from repro.analysis.numeric.__main__ import main as numeric_main
from repro.analysis.numeric.numsan import (
    DRIFT_BOUNDS,
    NumSan,
    NumSanOperator,
    sanitize_operator,
)
from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import AggregateFunction, make_aggregate
from repro.engine.handlers import KSlackHandler
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.errors import ConfigurationError, SanitizerError
from repro.obs.trace import TraceRecorder
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.generators import generate_stream

#: The cancellation window: the fsum reference keeps the 1.0 a naive
#: left-to-right fold loses entirely.
TORTURE = [1e16, 1.0, -1e16]


class NaiveSum(AggregateFunction):
    """A sum whose fold is deliberately naive — drifts on cancellation."""

    name = "sum"
    error_model_kind = "additive_mass"
    __numeric__ = "compensated"  # a lie this class cannot honour

    def create(self):
        return [0.0]

    def add(self, accumulator, value):
        accumulator[0] = accumulator[0] + value

    def result(self, accumulator):
        return accumulator[0]

    def merge(self, accumulator, other):
        accumulator[0] = accumulator[0] + other[0]
        return accumulator


class UncheckableAggregate(AggregateFunction):
    """An aggregate NumSan has no reference implementation for."""

    name = "weird"
    error_model_kind = "additive_mass"
    __numeric__ = "exact"

    def create(self):
        return []

    def add(self, accumulator, value):
        accumulator.append(value)

    def result(self, accumulator):
        return 42.0

    def merge(self, accumulator, other):
        accumulator.extend(other)
        return accumulator


def fold_and_check(aggregate, values, exact_every=16):
    """Shadow one aggregate, fold ``values``, extract the checked result."""
    san = NumSan(exact_every=exact_every)
    shadow = san.shadow_aggregate(aggregate)
    accumulator = shadow.create()
    shadow.add_many(accumulator, values)
    return san, shadow.result(accumulator)


# --------------------------------------------------------------------- #
# shadow checking


def test_compensated_sum_passes_the_torture_window():
    san, value = fold_and_check(make_aggregate("sum"), TORTURE)
    assert value == 1.0  # Neumaier recovered the cancelled 1.0
    stats = san.report.stats["sum"]
    assert stats.windows_checked == 1
    assert stats.max_rel_drift == 0.0
    assert stats.max_ulp == 0.0


def test_naive_sum_violates_its_declared_budget():
    with pytest.raises(SanitizerError, match=r"NumSan\[drift\].*'sum'"):
        fold_and_check(NaiveSum(), TORTURE)


def test_violation_message_names_discipline_and_bound():
    with pytest.raises(SanitizerError, match=r"compensated.*1e-12"):
        fold_and_check(NaiveSum(), TORTURE)


def test_lying_exact_discipline_is_caught_bitwise():
    class LyingExactSum(NaiveSum):
        """Claims exactness; one ulp off is already a violation."""

        __numeric__ = "exact"

    with pytest.raises(SanitizerError, match=r'"exact".*differs'):
        # Naive fold gives 0.9999999999999999, the exact sum rounds to 1.0.
        fold_and_check(LyingExactSum(), [0.1] * 10)


def test_exact_count_passes_bitwise():
    san, value = fold_and_check(make_aggregate("count"), [1.0, 2.0, 3.0])
    assert value == 3.0
    assert san.report.stats["count"].max_ulp == 0.0


def test_mean_variance_and_quantile_references():
    values = [0.1 * step for step in range(1, 101)]
    for name, expected in [
        ("mean", math.fsum(values) / len(values)),
        ("p50", None),
        ("stddev", None),
    ]:
        san, value = fold_and_check(make_aggregate(name), list(values))
        stats = san.report.stats[name]
        assert stats.windows_checked == 1
        assert stats.max_rel_drift <= DRIFT_BOUNDS[stats.discipline]
        if expected is not None:
            assert math.isclose(value, expected, rel_tol=1e-9)


def test_empty_and_nonfinite_windows_are_skipped():
    san = NumSan()
    shadow = san.shadow_aggregate(make_aggregate("sum"))
    empty = shadow.create()
    shadow.result(empty)
    poisoned = shadow.create()
    shadow.add_many(poisoned, [1.0, math.nan])
    shadow.result(poisoned)
    stats = san.report.stats["sum"]
    assert stats.windows_checked == 0
    assert stats.windows_skipped == 2


def test_unknown_aggregates_are_recorded_not_silently_passed():
    san, value = fold_and_check(UncheckableAggregate(), [1.0, 2.0])
    assert value == 42.0
    stats = san.report.stats["weird"]
    assert stats.windows_checked == 0
    assert stats.windows_skipped == 1
    assert san.report.windows_skipped() == 1


def test_exact_every_one_makes_every_check_exact():
    san = NumSan(exact_every=1)
    shadow = san.shadow_aggregate(make_aggregate("sum"))
    for _ in range(5):
        accumulator = shadow.create()
        shadow.add_many(accumulator, TORTURE)
        shadow.result(accumulator)
    stats = san.report.stats["sum"]
    assert stats.windows_checked == 5
    assert stats.windows_exact == 5


def test_exact_sampling_cadence():
    san = NumSan(exact_every=4)
    shadow = san.shadow_aggregate(make_aggregate("sum"))
    for _ in range(8):
        accumulator = shadow.create()
        shadow.add_many(accumulator, [1.0, 2.0])
        shadow.result(accumulator)
    assert san.report.stats["sum"].windows_exact == 2


def test_shadow_merge_concatenates_mirrors():
    san = NumSan()
    shadow = san.shadow_aggregate(make_aggregate("sum"))
    left = shadow.create()
    shadow.add_many(left, [1e16, 1.0])
    right = shadow.create()
    shadow.add(right, -1e16)
    shadow.merge(left, right)
    assert shadow.result(left) == 1.0
    assert san.report.stats["sum"].windows_checked == 1


# --------------------------------------------------------------------- #
# configuration errors


def test_exact_every_must_be_positive():
    with pytest.raises(ConfigurationError, match="exact_every"):
        NumSan(exact_every=0)


def test_missing_annotation_is_rejected():
    class BareAggregate:
        """Duck-typed aggregate with no __numeric__ contract at all."""

        name = "sum"
        error_model_kind = "additive_mass"

    with pytest.raises(ConfigurationError, match="no __numeric__"):
        NumSan().shadow_aggregate(BareAggregate())


def test_unknown_annotation_value_is_rejected():
    class MislabeledSum(NaiveSum):
        """An annotation outside the vocabulary has no drift budget."""

        __numeric__ = "fast"

    with pytest.raises(ConfigurationError, match="'fast'"):
        NumSan().shadow_aggregate(MislabeledSum())


def test_operator_without_aggregate_is_rejected():
    with pytest.raises(ConfigurationError, match="'aggregate'"):
        NumSan().guard_operator(object())


# --------------------------------------------------------------------- #
# run_pipeline(sanitize="numeric")


def make_operator(name="mean"):
    """Sliding aggregate over a K-slack handler."""
    return WindowAggregateOperator(
        SlidingWindowAssigner(size=2, slide=1),
        make_aggregate(name),
        KSlackHandler(k=1.0),
    )


def test_pipeline_numeric_mode_is_bit_identical_to_off():
    elements = build_elements(3, 200)
    plain = run_pipeline(elements, make_operator(), sample_every=25)
    sanitized = run_pipeline(
        elements, make_operator(), sample_every=25, sanitize="numeric"
    )
    assert sanitized.results == plain.results
    assert sanitized.observed_errors == plain.observed_errors
    assert sanitized.metrics.n_results == plain.metrics.n_results


def test_pipeline_rejects_probe_with_numeric_mode():
    with pytest.raises(ConfigurationError, match="probe"):
        run_pipeline(
            [], make_operator(), sanitize="numeric", sanitize_probe_every=2
        )


def test_pipeline_unknown_sanitizer_lists_numeric():
    with pytest.raises(ConfigurationError, match='"numeric"'):
        run_pipeline([], make_operator(), sanitize="float")


def test_sanitize_operator_exposes_the_report():
    operator = sanitize_operator(make_operator("sum"))
    assert isinstance(operator, NumSanOperator)
    elements = build_elements(5, 300)
    run_pipeline(elements, operator)
    stats = operator.report.stats["sum"]
    assert stats.windows_checked > 0
    assert stats.max_rel_drift <= DRIFT_BOUNDS["compensated"]
    # The proxy forwards public attributes of the wrapped operator.
    assert operator.aggregate is operator.shadow


def test_detail_tracer_records_drift_events():
    recorder = TraceRecorder(detail=True)
    operator = sanitize_operator(make_operator("sum"), tracer=recorder)
    run_pipeline(build_elements(2, 200), operator)
    events = list(recorder.of_kind("numeric.drift"))
    assert events
    assert events[0].fields["aggregate"] == "sum"
    assert events[0].fields["discipline"] == "compensated"
    assert any(event.fields["exact"] for event in events) or len(events) < 16


def test_default_tracer_records_no_drift_events():
    recorder = TraceRecorder()  # detail off: per-window records gated
    operator = sanitize_operator(make_operator("sum"), tracer=recorder)
    run_pipeline(build_elements(2, 200), operator)
    assert list(recorder.of_kind("numeric.drift")) == []


# --------------------------------------------------------------------- #
# acceptance drift bounds on the E18-style workload


@pytest.fixture(scope="module")
def disordered_stream():
    rng = np.random.default_rng(18)
    return inject_disorder(
        generate_stream(duration=1500 / 200, rate=200, rng=rng),
        ExponentialDelay(0.3),
        rng,
    )


@pytest.mark.parametrize(
    ("name", "budget"),
    [("sum", 1e-12), ("mean", 1e-12), ("count", 1e-12), ("variance", 1e-9)],
)
def test_acceptance_drift_bounds(disordered_stream, name, budget):
    operator = sanitize_operator(
        WindowAggregateOperator(
            SlidingWindowAssigner(size=2.0, slide=0.5),
            make_aggregate(name),
            KSlackHandler(1.0),
        )
    )
    run_pipeline(list(disordered_stream), operator)
    stats = operator.report.stats[name]
    assert stats.windows_checked > 0
    assert stats.windows_exact > 0  # the Fraction path was sampled
    assert stats.max_rel_drift <= budget


def test_smoke_cli(capsys):
    status = numeric_main(
        ["smoke", "--elements", "600", "--aggregates", "sum,count"]
    )
    out = capsys.readouterr().out
    assert status == 0
    assert "all aggregates within declared budgets" in out
    assert "sum" in out
