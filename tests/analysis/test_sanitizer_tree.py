"""StreamSan over tree execution: clean runs pass, seeded tree bugs fail.

The divergence probe, not exact equality, is the contract for batched
tree runs: merging cached partials in dyadic order can differ from the
scalar slice chain by one ULP, which the probe's relative tolerance
absorbs while still catching real drift (missing or extra emissions).
"""

from __future__ import annotations

import pytest

from repro.analysis.concur.stress import build_elements
from repro.engine.aggregates import make_aggregate
from repro.engine.handlers import DisorderHandler, KSlackHandler
from repro.engine.partial_tree import TreeWindowAggregateOperator
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.errors import SanitizerError
from repro.streams.element import StreamElement


def make_tree_operator(cls=TreeWindowAggregateOperator, handler=None):
    """A sliding-mean tree operator (size 2, slide 1) over K-slack."""
    return cls(
        SlidingWindowAssigner(size=2, slide=1),
        make_aggregate("mean"),
        handler if handler is not None else KSlackHandler(k=1.0),
    )


ELEMENTS = build_elements(11, 250)


# --------------------------------------------------------------------- #
# clean tree runs sail through the checkers


def test_tree_scalar_run_is_unchanged_by_sanitizer():
    plain = run_pipeline(ELEMENTS, make_tree_operator())
    checked = run_pipeline(ELEMENTS, make_tree_operator(), sanitize=True)
    assert checked.results == plain.results
    assert checked.observed_errors == plain.observed_errors


def test_tree_batched_run_with_divergence_probe_is_clean():
    plain = run_pipeline(ELEMENTS, make_tree_operator(), batch_size=16)
    checked = run_pipeline(
        ELEMENTS,
        make_tree_operator(),
        batch_size=16,
        sanitize=True,
        sanitize_probe_every=2,
    )
    assert checked.results == plain.results


# --------------------------------------------------------------------- #
# seeded tree bugs the checkers must catch


class DuplicatingTreeOperator(TreeWindowAggregateOperator):
    """BUG: every closed window is emitted twice."""

    def process(self, element: StreamElement):
        """Double the emissions of the real tree path."""
        results = super().process(element)
        return results + results


def test_duplicate_tree_emission_is_caught():
    with pytest.raises(SanitizerError, match=r"StreamSan\[retirement\].*twice"):
        run_pipeline(
            ELEMENTS, make_tree_operator(DuplicatingTreeOperator), sanitize=True
        )


class DroppingTreeOperator(TreeWindowAggregateOperator):
    """BUG: the batched path silently drops the last result of a chunk."""

    def process_many(self, elements):
        """Lose one emission relative to the scalar path."""
        results = super().process_many(elements)
        return results[:-1] if results else results


def test_tree_batched_scalar_divergence_is_caught():
    with pytest.raises(SanitizerError, match=r"StreamSan\[divergence\]"):
        run_pipeline(
            ELEMENTS,
            make_tree_operator(DroppingTreeOperator),
            batch_size=16,
            sanitize=True,
            sanitize_probe_every=1,
        )


class RegressingTreeHandler(DisorderHandler):
    """BUG: releases immediately while its frontier walks backwards."""

    name = "bad-tree-frontier"

    def __init__(self) -> None:
        self._offers = 0

    def offer(self, element: StreamElement) -> list[StreamElement]:
        """Release immediately; the frontier regresses per offer."""
        self._offers += 1
        return [element]

    def flush(self) -> list[StreamElement]:
        """Nothing buffered."""
        return []

    @property
    def frontier(self) -> float:
        return -float(self._offers)


def test_buggy_tree_handler_is_caught():
    operator = make_tree_operator(handler=RegressingTreeHandler())
    with pytest.raises(SanitizerError, match=r"StreamSan\[frontier\].*backwards"):
        run_pipeline(ELEMENTS[:10], operator, sanitize=True)
