"""RaceSan lockset detector: unit tests, stress harness, pipeline mode."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.concur.__main__ import main as concur_main
from repro.analysis.concur.racesan import GuardedProxy, RaceSan, TrackedLock
from repro.analysis.concur.stress import (
    build_elements,
    build_store,
    run_stress,
)
from repro.engine.aggregates import make_aggregate
from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.handlers import KSlackHandler
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.errors import ConfigurationError, SanitizerError


class Cell:
    """Minimal shared object for instrumentation tests."""

    def __init__(self):
        self.value = 0
        self.history = []


def in_thread(fn, *args):
    """Run ``fn`` on a worker thread to completion, re-raising its error."""
    box: list[BaseException] = []

    def runner():
        try:
            fn(*args)
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            box.append(exc)

    thread = threading.Thread(target=runner)
    thread.start()
    thread.join()
    if box:
        raise box[0]


# --------------------------------------------------------------------- #
# lockset state machine


def test_single_thread_never_reports():
    san = RaceSan()
    cell = san.instrument(Cell(), "Cell")
    for _ in range(100):
        cell.value += 1
        cell.history.append(cell.value)
    assert san.findings == []


def test_unsynchronized_write_write_is_reported():
    san = RaceSan(raise_on_finding=False)
    cell = san.instrument(Cell(), "Cell")
    cell.value = 1  # main thread: exclusive, written
    in_thread(lambda: setattr(cell, "value", 2))  # no locks in common
    assert len(san.findings) == 1
    finding = san.findings[0]
    assert finding.kind == "write/write"
    assert finding.label == "Cell"
    assert finding.attr == "value"
    assert "RaceSan[lockset]" in finding.message


def test_finding_raises_sanitizer_error_by_default():
    san = RaceSan()
    cell = san.instrument(Cell(), "Cell")
    cell.value = 1
    with pytest.raises(SanitizerError, match=r"RaceSan\[lockset\].*Cell\.value"):
        in_thread(lambda: setattr(cell, "value", 2))


def test_initialize_then_publish_is_not_a_race():
    # One thread writes during setup; other threads only ever read.
    san = RaceSan()
    cell = san.instrument(Cell(), "Cell")
    cell.value = 41
    cell.value = 42
    seen = []
    in_thread(lambda: seen.append(cell.value))
    in_thread(lambda: seen.append(cell.value))
    assert seen == [42, 42]
    assert san.findings == []


def test_common_lock_silences_the_detector():
    san = RaceSan()
    lock = san.wrap_lock(threading.Lock(), "lock")
    cell = san.instrument(Cell(), "Cell")

    def bump():
        with lock:
            cell.value += 1

    bump()
    in_thread(bump)
    in_thread(bump)
    with lock:  # reading shared-written state also needs the lock
        assert cell.value == 3
    assert san.findings == []


def test_lockset_intersection_narrows_to_empty():
    san = RaceSan(raise_on_finding=False)
    lock_a = san.wrap_lock(threading.Lock(), "a")
    lock_b = san.wrap_lock(threading.Lock(), "b")
    cell = san.instrument(Cell(), "Cell")

    def write_holding(*locks):
        for lock in locks:
            lock.acquire()
        try:
            cell.value = 1  # pure write: no read access precedes it
        finally:
            for lock in reversed(locks):
                lock.release()

    write_holding(lock_a, lock_b)  # exclusive phase
    in_thread(write_holding, lock_b)  # candidate lockset: {b}
    assert san.findings == []
    in_thread(write_holding, lock_a)  # {b} & {a} = {} -> race
    assert len(san.findings) == 1
    assert san.findings[0].kind == "write/write"


def test_race_is_reported_once_per_location():
    san = RaceSan(raise_on_finding=False)
    cell = san.instrument(Cell(), "Cell")
    cell.value = 1
    for _ in range(5):
        in_thread(lambda: setattr(cell, "value", 2))
    assert len(san.findings) == 1


# --------------------------------------------------------------------- #
# TrackedLock and instrumentation plumbing


def test_tracked_lock_is_reentrant_aware():
    san = RaceSan()
    lock = san.wrap_lock(threading.RLock(), "r")
    assert san.locks_held() == frozenset()
    with lock:
        with lock:
            assert san.locks_held() == {id(lock)}
        assert san.locks_held() == {id(lock)}  # outer hold survives
    assert san.locks_held() == frozenset()


def test_wrap_lock_is_idempotent():
    san = RaceSan()
    lock = san.wrap_lock(threading.Lock(), "x")
    assert san.wrap_lock(lock) is lock
    assert isinstance(lock, TrackedLock)


def test_instrument_and_uninstrument_round_trip():
    san = RaceSan()
    cell = Cell()
    original = type(cell)
    assert san.instrument(cell, "Cell") is cell
    assert type(cell) is not original
    assert isinstance(cell, original)  # recording subclass
    san.instrument(cell, "Cell")  # idempotent
    san.uninstrument(cell)
    assert type(cell) is original


def test_reset_detaches_and_clears():
    san = RaceSan(raise_on_finding=False)
    cell = san.instrument(Cell(), "Cell")
    cell.value = 1
    in_thread(lambda: setattr(cell, "value", 2))
    assert san.findings
    san.reset()
    assert san.findings == []
    cell.value = 3  # instrumentation detached: recording is a no-op now
    in_thread(lambda: setattr(cell, "value", 4))
    assert san.findings == []


# --------------------------------------------------------------------- #
# GuardedProxy (method-level, used by run_pipeline(sanitize="race"))


class Counter:
    """Tiny operator-shaped object for proxy tests."""

    def __init__(self):
        self.total = 0

    def add(self, n):
        """Mutating method (name not in the read prefixes)."""
        self.total += n
        return self.total

    def snapshot_total(self):
        """Read-classified method."""
        return self.total


def test_guarded_proxy_forwards_and_classifies():
    san = RaceSan()
    proxy = san.guard(Counter(), "Counter")
    assert isinstance(proxy, GuardedProxy)
    assert proxy.add(2) == 2
    assert proxy.snapshot_total() == 2
    assert proxy.total == 2  # data attribute read passes through
    assert san.findings == []


def test_guarded_proxy_reports_cross_thread_mutation():
    san = RaceSan(raise_on_finding=False)
    proxy = san.guard(Counter(), "Counter")
    proxy.add(1)
    in_thread(proxy.add, 1)
    assert len(san.findings) == 1
    assert san.findings[0].label == "Counter"


def test_guarded_proxy_read_methods_do_not_race_with_reads():
    san = RaceSan()
    proxy = san.guard(Counter(), "Counter")
    proxy.add(1)  # exclusive phase write
    in_thread(proxy.snapshot_total)  # shared phase is read-only
    in_thread(proxy.snapshot_total)
    assert san.findings == []


# --------------------------------------------------------------------- #
# stress harness


def test_stress_guarded_run_has_parity_and_no_findings():
    report = run_stress(2, seed=0, n_elements=64)
    assert report.ok
    assert report.parity_ok
    assert report.findings == []
    assert report.worker_errors == []
    assert sum(report.results_per_query.values()) > 0


def test_stress_three_threads_uneven_queries():
    report = run_stress(3, seed=1, n_elements=48, n_queries=5)
    assert report.ok and report.parity_ok


def test_stress_detects_the_seeded_race():
    report = run_stress(2, seed=0, n_elements=64, buggy=True)
    assert report.buggy and report.ok
    assert report.findings
    assert any("RaceSan[lockset]" in f.message for f in report.findings)


def test_stress_rejects_single_thread():
    with pytest.raises(ValueError, match="needs >= 2 threads"):
        run_stress(1, seed=0)


def test_stress_elements_are_deterministic():
    assert build_elements(7, 10) == build_elements(7, 10)
    assert build_elements(7, 10) != build_elements(8, 10)


def test_stress_cli_smoke(capsys):
    status = concur_main(
        ["stress", "--threads", "2", "--seeds", "0", "--elements", "48"]
    )
    out = capsys.readouterr().out
    assert status == 0
    assert "all phases ok" in out
    assert "caught" in out


def test_inventory_cli_smoke(capsys):
    status = concur_main(["inventory", "src"])
    out = capsys.readouterr().out
    assert status == 0
    assert "SharedSliceStore" in out
    assert "guarded" in out


# --------------------------------------------------------------------- #
# run_pipeline(sanitize="race")


def make_operator():
    """Sliding mean over a K-slack handler."""
    return WindowAggregateOperator(
        SlidingWindowAssigner(size=2, slide=1),
        make_aggregate("mean"),
        KSlackHandler(k=1.0),
    )


def test_pipeline_race_mode_is_bit_identical_to_off():
    elements = build_elements(3, 200)
    plain = run_pipeline(elements, make_operator(), sample_every=25)
    raced = run_pipeline(
        elements, make_operator(), sample_every=25, sanitize="race"
    )
    assert raced.results == plain.results
    assert raced.observed_errors == plain.observed_errors
    assert raced.metrics.n_results == plain.metrics.n_results
    assert (
        raced.metrics.slack_timeline == plain.metrics.slack_timeline
    )


def test_pipeline_rejects_unknown_sanitizer():
    with pytest.raises(ConfigurationError, match="unknown sanitizer"):
        run_pipeline([], make_operator(), sanitize="thread")


def test_pipeline_rejects_probe_with_race_mode():
    with pytest.raises(ConfigurationError, match="probe"):
        run_pipeline(
            [], make_operator(), sanitize="race", sanitize_probe_every=2
        )


def test_shared_store_parity_under_race_instrumentation():
    # The instrumented store replays a single-threaded run bit-identically.
    from repro.analysis.concur.stress import instrument_shared_store
    from repro.engine.partial_tree import run_shared_slices

    elements = build_elements(5, 150)
    expected = run_shared_slices(elements, build_store(4))
    store = build_store(4)
    san = RaceSan()
    instrument_shared_store(store, san)
    assert run_shared_slices(elements, store) == expected
    assert san.findings == []
