"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import generate_stream


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_inorder_stream(rng) -> list[StreamElement]:
    """~600 elements over 30s of event time, in event order."""
    return generate_stream(duration=30.0, rate=20.0, rng=rng)


@pytest.fixture
def small_disordered_stream(rng, small_inorder_stream) -> list[StreamElement]:
    """The small stream with exponential(0.5s) delays, arrival-ordered."""
    return inject_disorder(small_inorder_stream, ExponentialDelay(0.5), rng)


def make_elements(spec: list[tuple[float, float]]) -> list[StreamElement]:
    """Build elements from (event_time, value) pairs, in the given order."""
    return [
        StreamElement(event_time=ts, value=val, seq=i)
        for i, (ts, val) in enumerate(spec)
    ]


def make_arrived(spec: list[tuple[float, float, float]]) -> list[StreamElement]:
    """Build elements from (event_time, arrival_time, value), arrival order."""
    elements = [
        StreamElement(event_time=ts, value=val, arrival_time=at, seq=i)
        for i, (ts, at, val) in enumerate(spec)
    ]
    return sorted(elements, key=StreamElement.arrival_sort_key)
