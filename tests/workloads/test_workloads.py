"""Tests for the synthetic domain workloads."""

import numpy as np
import pytest

from repro.streams.disorder import measure_disorder
from repro.streams.element import ensure_arrival_order
from repro.workloads.financial import (
    DEFAULT_SYMBOLS,
    financial_delay_model,
    financial_ticks,
)
from repro.workloads.sensors import sensor_delay_model, sensor_readings
from repro.workloads.soccer import (
    PlayerSpeedValues,
    distance_covered,
    soccer_delay_model,
    soccer_positions,
)


class TestFinancialWorkload:
    def test_arrival_ordered(self, rng):
        stream = financial_ticks(duration=30, rate=50, rng=rng)
        ensure_arrival_order(stream)

    def test_keys_are_symbols(self, rng):
        stream = financial_ticks(duration=30, rate=50, rng=rng)
        assert {el.key for el in stream} <= set(DEFAULT_SYMBOLS)

    def test_prices_near_start(self, rng):
        stream = financial_ticks(duration=30, rate=50, rng=rng, volatility=0.01)
        for el in stream:
            assert 90.0 < el.value < 110.0

    def test_delays_heavy_tailed(self, rng):
        stream = financial_ticks(duration=120, rate=100, rng=rng)
        stats = measure_disorder(stream)
        assert stats.out_of_order_fraction > 0.0
        # The 5% Pareto component stretches the tail well past the median.
        assert stats.p99_delay > 5 * stats.p50_delay

    def test_custom_delay_model(self, rng):
        from repro.streams.delay import ConstantDelay

        stream = financial_ticks(
            duration=10, rate=20, rng=rng, delay_model=ConstantDelay(0.1)
        )
        stats = measure_disorder(stream)
        assert stats.out_of_order_fraction == 0.0

    def test_delay_model_mean(self, rng):
        model = financial_delay_model(fast_mean=0.1, slow_scale=1.0, slow_shape=2.0)
        samples = [model.sample(rng, 0.0) for __ in range(20000)]
        assert np.mean(samples) == pytest.approx(model.mean(), rel=0.25)


class TestSensorWorkload:
    def test_arrival_ordered(self, rng):
        stream = sensor_readings(duration=30, rate=50, rng=rng)
        ensure_arrival_order(stream)

    def test_key_universe(self, rng):
        stream = sensor_readings(duration=60, rate=100, rng=rng, n_sensors=4)
        assert {el.key for el in stream} == {f"sensor-{i}" for i in range(4)}

    def test_values_in_physical_envelope(self, rng):
        stream = sensor_readings(duration=30, rate=50, rng=rng, noise_std=0.1)
        for el in stream:
            assert 10.0 < el.value < 30.0

    def test_burst_model_spikes_delays(self, rng):
        model = sensor_delay_model(burst_start=10.0, burst_end=20.0, burst_mu=2.0)
        calm = [model.sample(rng, 5.0) for __ in range(500)]
        burst = [model.sample(rng, 15.0) for __ in range(500)]
        assert np.median(burst) > 5 * np.median(calm)


class TestSoccerWorkload:
    def test_arrival_ordered(self, rng):
        stream = soccer_positions(duration=30, rate=100, rng=rng)
        ensure_arrival_order(stream)

    def test_speeds_bounded(self, rng):
        stream = soccer_positions(duration=30, rate=100, rng=rng)
        for el in stream:
            assert 0.0 <= el.value <= 9.0

    def test_player_keys(self, rng):
        stream = soccer_positions(duration=60, rate=200, rng=rng, n_players=5)
        assert {el.key for el in stream} == {f"player-{i}" for i in range(5)}

    def test_speed_process_is_smooth(self, rng):
        process = PlayerSpeedValues()
        previous = process.sample(rng, 0.0, "p")
        for __ in range(100):
            current = process.sample(rng, 0.0, "p")
            assert abs(current - previous) < 2.5
            previous = current

    def test_reset_clears_state(self, rng):
        process = PlayerSpeedValues()
        for __ in range(50):
            process.sample(rng, 0.0, "p")
        process.reset()
        assert process.sample(rng, 0.0, "p") <= 3.0  # back near the 1.0 start

    def test_dropout_model_bimodal(self, rng):
        model = soccer_delay_model(dropout_weight=0.5, dropout_max=2.0)
        samples = [model.sample(rng, 0.0) for __ in range(1000)]
        assert min(samples) < 0.06
        assert max(samples) > 0.5

    def test_distance_covered_positive(self, rng):
        stream = soccer_positions(duration=30, rate=100, rng=rng)
        assert distance_covered(stream) > 0.0

    def test_distance_covered_empty(self):
        assert distance_covered([]) == 0.0
