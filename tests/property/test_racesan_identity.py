"""Property test: RaceSan instrumentation never perturbs a run.

Hypothesis generates random disordered streams, handlers, operators and
batch sizes and asserts that ``run_pipeline(sanitize="race")`` is
**bit-identical** to the unsanitized run: same window results, same
observed errors, same counters.  The lockset detector only observes
attribute accesses — and a single-threaded run can never produce a
finding, because every location stays in its exclusive phase.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.aqk import AQKSlackHandler
from repro.core.spec import QualityTarget
from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import make_aggregate
from repro.engine.handlers import KSlackHandler, NoBufferHandler
from repro.engine.partial_tree import TreeWindowAggregateOperator
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.streams.element import StreamElement

HANDLERS = {
    "no-buffer": lambda: NoBufferHandler(),
    "k-slack": lambda: KSlackHandler(0.8),
    "aqk-quality": lambda: AQKSlackHandler(
        QualityTarget(0.05), "mean", window_size=3.0, warmup_elements=20
    ),
}

OPERATORS = {
    "flat": WindowAggregateOperator,
    "tree": TreeWindowAggregateOperator,
}


@st.composite
def scenarios(draw):
    n = draw(st.integers(min_value=30, max_value=70))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    delays = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    values = draw(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    handler_name = draw(st.sampled_from(sorted(HANDLERS)))
    operator_name = draw(st.sampled_from(sorted(OPERATORS)))
    aggregate_name = draw(st.sampled_from(["count", "mean", "max"]))
    batch_size = draw(st.sampled_from([0, 7, 32]))

    event_time = 0.0
    elements = []
    for seq in range(n):
        event_time += gaps[seq]
        elements.append(
            StreamElement(
                event_time=event_time,
                value=values[seq],
                arrival_time=event_time + delays[seq],
                seq=seq,
            )
        )
    elements.sort(key=StreamElement.arrival_sort_key)
    return elements, handler_name, operator_name, aggregate_name, batch_size


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(scenarios())
def test_race_sanitized_run_is_bit_identical_to_off(scenario):
    elements, handler_name, operator_name, aggregate_name, batch_size = scenario

    def make_operator():
        return OPERATORS[operator_name](
            SlidingWindowAssigner(3.0, 1.0),
            make_aggregate(aggregate_name),
            HANDLERS[handler_name](),
            feedback_horizon=6.0,
        )

    plain = run_pipeline(
        list(elements), make_operator(), sample_every=10, batch_size=batch_size
    )
    raced = run_pipeline(
        list(elements),
        make_operator(),
        sample_every=10,
        batch_size=batch_size,
        sanitize="race",
    )

    assert raced.results == plain.results
    assert raced.observed_errors == plain.observed_errors
    assert raced.metrics.slack_timeline == plain.metrics.slack_timeline
    assert raced.metrics.n_results == plain.metrics.n_results
    assert raced.metrics.late_dropped == plain.metrics.late_dropped
    assert raced.metrics.released_count == plain.metrics.released_count
