"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.estimators import StreamContext, make_error_model
from repro.core.sampling import SlidingDelaySample
from repro.engine.aggregate_op import relative_error
from repro.engine.aggregates import (
    CountAggregate,
    MaxAggregate,
    MeanAggregate,
    MedianAggregate,
    MinAggregate,
    StdDevAggregate,
    SumAggregate,
)
from repro.engine.buffer import SortingBuffer
from repro.engine.handlers import KSlackHandler
from repro.engine.metrics import LatencySummary
from repro.engine.oracle import oracle_results
from repro.engine.windows import SlidingWindowAssigner
from repro.streams.delay import ConstantDelay
from repro.streams.disorder import count_inversions, inject_disorder
from repro.streams.element import StreamElement

# --------------------------------------------------------------------- #
# strategies

delays = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
event_times = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
values = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


@st.composite
def arrived_streams(draw, max_size=60):
    """Arrival-ordered streams with arbitrary bounded delays."""
    pairs = draw(
        st.lists(st.tuples(event_times, delays, values), min_size=1, max_size=max_size)
    )
    elements = [
        StreamElement(event_time=ts, value=v, arrival_time=ts + d, seq=i)
        for i, (ts, d, v) in enumerate(sorted(pairs))
    ]
    return sorted(elements, key=StreamElement.arrival_sort_key)


# --------------------------------------------------------------------- #
# disorder machinery


@given(st.lists(st.floats(allow_nan=False, min_value=-1e9, max_value=1e9), max_size=60))
def test_count_inversions_matches_bruteforce(xs):
    brute = sum(
        1 for i in range(len(xs)) for j in range(i + 1, len(xs)) if xs[i] > xs[j]
    )
    assert count_inversions(xs) == brute


@given(
    st.lists(st.tuples(event_times, values), min_size=1, max_size=50),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_inject_disorder_is_arrival_sorted_permutation(pairs, seed):
    elements = [
        StreamElement(event_time=ts, value=v, seq=i)
        for i, (ts, v) in enumerate(sorted(pairs))
    ]
    rng = np.random.default_rng(seed)
    out = inject_disorder(elements, ConstantDelay(0.0), rng)
    arrivals = [el.arrival_time for el in out]
    assert arrivals == sorted(arrivals)
    assert sorted(el.value for el in out) == sorted(el.value for el in elements)


# --------------------------------------------------------------------- #
# sorting buffer / K-slack


@given(arrived_streams())
def test_sorting_buffer_total_order(stream):
    buffer = SortingBuffer()
    for element in stream:
        buffer.push(element)
    drained = buffer.drain()
    keys = [el.event_sort_key() for el in drained]
    assert keys == sorted(keys)
    assert len(drained) == len(stream)


@given(arrived_streams(), st.floats(min_value=0.0, max_value=100.0))
def test_kslack_releases_everything_exactly_once(stream, k):
    handler = KSlackHandler(k)
    released = []
    for element in stream:
        released.extend(handler.offer(element))
    released.extend(handler.flush())
    assert sorted(el.seq for el in released) == sorted(el.seq for el in stream)


@given(arrived_streams())
def test_kslack_frontier_monotone(stream):
    handler = KSlackHandler(1.0)
    previous = float("-inf")
    for element in stream:
        handler.offer(element)
        assert handler.frontier >= previous
        previous = handler.frontier


@given(arrived_streams())
def test_kslack_with_max_displacement_restores_order(stream):
    # K = max displacement guarantees perfect reordering.
    running = float("-inf")
    displacement = 0.0
    for element in stream:
        if element.event_time < running:
            displacement = max(displacement, running - element.event_time)
        running = max(running, element.event_time)
    handler = KSlackHandler(displacement)
    released = []
    for element in stream:
        released.extend(handler.offer(element))
    released.extend(handler.flush())
    keys = [el.event_sort_key() for el in released]
    assert keys == sorted(keys)


# --------------------------------------------------------------------- #
# windows


@given(
    st.floats(min_value=0.1, max_value=100.0),
    st.floats(min_value=0.1, max_value=100.0),
    st.floats(min_value=0.0, max_value=10000.0),
)
def test_sliding_assignment_invariants(size, slide_fraction_src, ts):
    slide = min(size, max(0.1, slide_fraction_src % size))
    assigner = SlidingWindowAssigner(size=size, slide=slide)
    windows = assigner.assign(ts)
    assert windows
    # +1 tolerance: when size/slide is FP-integral both boundary windows can
    # round into membership.
    assert len(windows) <= math.ceil(size / slide) + 1
    for window in windows:
        assert window.contains(ts)
    starts = [w.start for w in windows]
    assert starts == sorted(starts)
    assert len(set(starts)) == len(starts)


# --------------------------------------------------------------------- #
# aggregates

AGGREGATES = [
    CountAggregate(),
    SumAggregate(),
    MeanAggregate(),
    MinAggregate(),
    MaxAggregate(),
    StdDevAggregate(),
    MedianAggregate(),
]


@given(
    st.lists(values, min_size=1, max_size=50),
    st.integers(min_value=0, max_value=50),
    st.sampled_from(AGGREGATES),
)
def test_aggregate_merge_equals_batch(xs, split_src, aggregate):
    split = split_src % (len(xs) + 1)
    left = aggregate.create()
    for x in xs[:split]:
        aggregate.add(left, x)
    right = aggregate.create()
    for x in xs[split:]:
        aggregate.add(right, x)
    merged = aggregate.merge(left, right)
    batch = aggregate.create()
    for x in xs:
        aggregate.add(batch, x)
    a = aggregate.result(merged)
    b = aggregate.result(batch)
    assert a == b or abs(a - b) <= 1e-6 * max(1.0, abs(b))


@given(st.lists(values, min_size=1, max_size=50))
def test_mean_between_min_and_max(xs):
    mean = MeanAggregate()
    acc = mean.create()
    for x in xs:
        mean.add(acc, x)
    assert min(xs) - 1e-9 <= mean.result(acc) <= max(xs) + 1e-9


# --------------------------------------------------------------------- #
# oracle


@given(arrived_streams(max_size=40), st.integers(min_value=0, max_value=2**31 - 1))
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_oracle_is_permutation_invariant(stream, seed):
    assigner = SlidingWindowAssigner(size=10, slide=5)
    aggregate = SumAggregate()
    rng = np.random.default_rng(seed)
    shuffled = list(stream)
    rng.shuffle(shuffled)
    assert oracle_results(stream, assigner, aggregate) == oracle_results(
        shuffled, assigner, aggregate
    )


# --------------------------------------------------------------------- #
# error metric and models


@given(values, values)
def test_relative_error_non_negative_and_zero_iff_equal(a, b):
    error = relative_error(a, b)
    assert error >= 0.0
    if a == b:
        assert error == 0.0


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.001, max_value=5.0),
    st.floats(min_value=1.0, max_value=10000.0),
    st.sampled_from(["additive_mass", "mean", "extremum", "rank", "distinct"]),
)
def test_error_models_monotone_and_invertible(p, dispersion, n, kind):
    model = make_error_model(kind)
    context = StreamContext(dispersion=dispersion, expected_window_count=n)
    error = model.error_from_late_fraction(p, context)
    assert error >= 0.0
    smaller = model.error_from_late_fraction(p / 2, context)
    assert smaller <= error + 1e-12
    inverted = model.late_fraction_for_error(error, context)
    assert inverted >= p - 1e-9  # at least as permissive as the forward map


# --------------------------------------------------------------------- #
# samplers and summaries


@given(st.lists(delays, min_size=1, max_size=200))
def test_sliding_sample_quantiles_bounded_and_monotone(xs):
    sample = SlidingDelaySample(capacity=100)
    for x in xs:
        sample.observe(x)
    recent = xs[-100:]
    quantiles = [sample.quantile(q) for q in (0.0, 0.25, 0.5, 0.75, 1.0)]
    assert quantiles == sorted(quantiles)
    for q in quantiles:
        assert min(recent) <= q <= max(recent)


@given(st.lists(st.floats(min_value=-100, max_value=1000, allow_nan=False), min_size=1))
def test_latency_summary_order(xs):
    summary = LatencySummary.from_values(xs)
    assert summary.count == len(xs)
    assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum
    slack = 1e-9 * max(1.0, max(abs(x) for x in xs))
    assert min(xs) - slack <= summary.mean <= max(xs) + slack


# --------------------------------------------------------------------- #
# sliced vs naive window execution


@given(
    arrived_streams(max_size=50),
    st.sampled_from([(4.0, 1.0), (10.0, 2.0), (6.0, 3.0), (5.0, 5.0)]),
    st.floats(min_value=0.0, max_value=5.0),
)
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_sliced_equals_naive(stream, window_params, k):
    from repro.engine.aggregate_op import WindowAggregateOperator
    from repro.engine.pipeline import run_pipeline
    from repro.engine.sliced_op import SlicedWindowAggregateOperator

    size, slide = window_params
    naive = WindowAggregateOperator(
        SlidingWindowAssigner(size, slide), SumAggregate(), KSlackHandler(k)
    )
    sliced = SlicedWindowAggregateOperator(
        SlidingWindowAssigner(size, slide), SumAggregate(), KSlackHandler(k)
    )
    naive_results = run_pipeline(stream, naive).results
    sliced_results = run_pipeline(stream, sliced).results
    naive_map = {(r.key, r.window): (r.value, r.count) for r in naive_results}
    sliced_map = {(r.key, r.window): (r.value, r.count) for r in sliced_results}
    assert set(naive_map) == set(sliced_map)
    for slot, (value, count) in naive_map.items():
        s_value, s_count = sliced_map[slot]
        assert s_count == count
        assert s_value == value or abs(s_value - value) <= 1e-6 * max(1.0, abs(value))
