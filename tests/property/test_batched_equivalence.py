"""Property test: batched execution is indistinguishable from scalar.

Hypothesis generates random disordered streams (random gaps, delays,
values, keys), a disorder handler (including the adaptive handler in
quality-target and latency-budget modes), an aggregate, an operator and a
batch size — including sizes that do not divide the stream length — and
asserts the full :func:`run_pipeline` observable state matches the scalar
run: window results, late drops, released counts and observed errors.

Quality-mode adaptive cases use order-independent aggregates (count, max,
median): their folds are bit-exact, so the controller sees bit-identical
error feedback and the adaptation trajectory cannot diverge.  Sum/mean
now fold through the shared Neumaier primitive, so their batched path is
bit-identical to scalar too (pinned by ``tests/property/
test_numeric_properties.py`` and lint rule R20); only stddev's Chan
combine still re-associates, within its declared 1e-9 budget.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.aqk import AQKSlackHandler
from repro.core.spec import LatencyBudget, QualityTarget
from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import (
    CountAggregate,
    MaxAggregate,
    MeanAggregate,
    MedianAggregate,
    SumAggregate,
)
from repro.engine.handlers import KSlackHandler, MPKSlackHandler, NoBufferHandler
from repro.engine.pipeline import run_pipeline
from repro.engine.sliced_op import SlicedWindowAggregateOperator
from repro.engine.watermarks import FixedLagWatermarkHandler, HeuristicWatermarkHandler
from repro.engine.windows import SlidingWindowAssigner
from repro.streams.element import StreamElement

RTOL = 1e-9

EXACT_AGGREGATES = {
    "count": CountAggregate,
    "max": MaxAggregate,
    "median": MedianAggregate,
}
ALL_AGGREGATES = {
    **EXACT_AGGREGATES,
    "sum": SumAggregate,
    "mean": MeanAggregate,
}

HANDLERS = {
    "no-buffer": lambda: NoBufferHandler(),
    "k-slack": lambda: KSlackHandler(0.8),
    "mp-k-slack": lambda: MPKSlackHandler(),
    "fixed-watermark": lambda: FixedLagWatermarkHandler(0.8),
    "heuristic-watermark": lambda: HeuristicWatermarkHandler(),
    "aqk-quality": lambda: AQKSlackHandler(
        QualityTarget(0.05), "mean", window_size=3.0, warmup_elements=20
    ),
    "aqk-budget": lambda: AQKSlackHandler(
        LatencyBudget(1.0), "mean", window_size=3.0, warmup_elements=20
    ),
}


@st.composite
def scenarios(draw):
    n = draw(st.integers(min_value=30, max_value=80))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    delays = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    values = draw(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    keys = draw(
        st.lists(st.integers(min_value=0, max_value=2), min_size=n, max_size=n)
    )
    handler_name = draw(st.sampled_from(sorted(HANDLERS)))
    pool = EXACT_AGGREGATES if handler_name == "aqk-quality" else ALL_AGGREGATES
    aggregate_name = draw(st.sampled_from(sorted(pool)))
    operator_name = draw(st.sampled_from(["naive", "sliced"]))
    batch_size = draw(st.integers(min_value=2, max_value=n + 10))

    event_time = 0.0
    elements = []
    for seq in range(n):
        event_time += gaps[seq]
        elements.append(
            StreamElement(
                event_time=event_time,
                value=values[seq],
                key=f"k{keys[seq]}",
                arrival_time=event_time + delays[seq],
                seq=seq,
            )
        )
    elements.sort(key=StreamElement.arrival_sort_key)
    return elements, handler_name, aggregate_name, operator_name, batch_size


def close(a: float, b: float) -> bool:
    if math.isnan(a) and math.isnan(b):
        return True
    return a == b or abs(a - b) <= RTOL * max(1.0, abs(a), abs(b))


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(scenarios())
def test_batched_run_matches_scalar(scenario):
    elements, handler_name, aggregate_name, operator_name, batch_size = scenario
    operator_cls = (
        WindowAggregateOperator
        if operator_name == "naive"
        else SlicedWindowAggregateOperator
    )

    def make_operator():
        return operator_cls(
            SlidingWindowAssigner(3.0, 1.0),
            ALL_AGGREGATES[aggregate_name](),
            HANDLERS[handler_name](),
            feedback_horizon=6.0,
        )

    scalar = run_pipeline(list(elements), make_operator())
    batched = run_pipeline(list(elements), make_operator(), batch_size=batch_size)

    assert len(scalar.results) == len(batched.results)
    for expected, actual in zip(scalar.results, batched.results):
        assert (
            expected.key,
            expected.window,
            expected.count,
            expected.emit_time,
            expected.latency,
            expected.flushed,
        ) == (
            actual.key,
            actual.window,
            actual.count,
            actual.emit_time,
            actual.latency,
            actual.flushed,
        )
        assert close(expected.value, actual.value)
    assert scalar.metrics.late_dropped == batched.metrics.late_dropped
    assert scalar.metrics.released_count == batched.metrics.released_count
    assert len(scalar.observed_errors) == len(batched.observed_errors)
    for expected, actual in zip(scalar.observed_errors, batched.observed_errors):
        assert close(expected, actual)
