"""Property tests: tree execution is equivalent to naive execution.

The partial-aggregate tree re-associates merges (dyadic decomposition
instead of left-to-right slice chains), so the equivalence claim splits:

* **bit-identical** for order-independent aggregates — count, min, max,
  distinct-count — under arbitrary disorder, late patches and retirement
  corrections;
* **within float-association tolerance** for sum/mean.

A third family checks the shared slice store against private per-query
pipelines on multi-query (E11-style) workloads.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import (
    CountAggregate,
    DistinctCountAggregate,
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
    SumAggregate,
)
from repro.engine.handlers import KSlackHandler
from repro.engine.partial_tree import (
    SharedSliceStore,
    TreeWindowAggregateOperator,
    run_shared_slices,
)
from repro.engine.sliced_op import SlicedWindowAggregateOperator
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.streams.element import StreamElement

# --------------------------------------------------------------------- #
# strategies

delays = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
event_times = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
values = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
# Small universe so distinct-count windows actually collide.
coarse_values = st.integers(min_value=0, max_value=12).map(float)

WINDOW_PARAMS = [(4.0, 1.0), (10.0, 2.0), (6.0, 3.0), (5.0, 5.0), (8.0, 0.5)]

ORDER_INDEPENDENT = [CountAggregate, MinAggregate, MaxAggregate, DistinctCountAggregate]


@st.composite
def arrived_streams(draw, max_size=60, value_strategy=values):
    """Arrival-ordered streams with arbitrary bounded delays."""
    pairs = draw(
        st.lists(
            st.tuples(event_times, delays, value_strategy),
            min_size=1,
            max_size=max_size,
        )
    )
    elements = [
        StreamElement(event_time=ts, value=v, arrival_time=ts + d, seq=i)
        for i, (ts, d, v) in enumerate(sorted(pairs))
    ]
    return sorted(elements, key=StreamElement.arrival_sort_key)


def run_pair(stream, size, slide, k, aggregate_cls, feedback_horizon=None):
    naive = WindowAggregateOperator(
        SlidingWindowAssigner(size, slide),
        aggregate_cls(),
        KSlackHandler(k),
        feedback_horizon=feedback_horizon,
    )
    tree = TreeWindowAggregateOperator(
        SlidingWindowAssigner(size, slide),
        aggregate_cls(),
        KSlackHandler(k),
        feedback_horizon=feedback_horizon,
    )
    naive_results = run_pipeline(stream, naive).results
    tree_results = run_pipeline(stream, tree).results
    return naive, naive_results, tree, tree_results


# --------------------------------------------------------------------- #
# bit-identical family


@given(
    arrived_streams(value_strategy=coarse_values),
    st.sampled_from(WINDOW_PARAMS),
    st.floats(min_value=0.0, max_value=5.0),
    st.sampled_from(ORDER_INDEPENDENT),
)
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_tree_bit_identical_for_order_independent_aggregates(
    stream, window_params, k, aggregate_cls
):
    size, slide = window_params
    __, naive_results, __, tree_results = run_pair(
        stream, size, slide, k, aggregate_cls
    )
    naive_map = {(r.key, r.window): (r.value, r.count) for r in naive_results}
    tree_map = {(r.key, r.window): (r.value, r.count) for r in tree_results}
    assert naive_map == tree_map  # exact equality: values, counts, windows


@given(
    arrived_streams(value_strategy=coarse_values),
    st.sampled_from(WINDOW_PARAMS),
    st.sampled_from(ORDER_INDEPENDENT),
)
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_tree_retirement_corrections_bit_identical(stream, window_params, aggregate_cls):
    """Late patches feed retirement: observed errors must match exactly.

    K = 0 maximizes lateness, and a small feedback horizon forces windows
    to retire (and be re-assembled from patched partials) mid-stream.  The
    reference is the sliced operator: both slice-based modes score emitted
    windows only, while the naive operator additionally scores phantom
    records for missed windows (see
    ``test_observed_errors_match_for_emitted_windows`` in the sliced suite).
    """
    size, slide = window_params
    sliced = SlicedWindowAggregateOperator(
        SlidingWindowAssigner(size, slide),
        aggregate_cls(),
        KSlackHandler(0.0),
        feedback_horizon=size,
    )
    tree = TreeWindowAggregateOperator(
        SlidingWindowAssigner(size, slide),
        aggregate_cls(),
        KSlackHandler(0.0),
        feedback_horizon=size,
    )
    sliced_results = run_pipeline(stream, sliced).results
    tree_results = run_pipeline(stream, tree).results
    assert len(sliced_results) == len(tree_results)
    sliced_errors = sliced.stats.observed_errors
    tree_errors = tree.stats.observed_errors
    assert len(sliced_errors) == len(tree_errors)
    for a, b in zip(sorted(sliced_errors), sorted(tree_errors)):
        assert (math.isnan(a) and math.isnan(b)) or a == b


# --------------------------------------------------------------------- #
# float-association family


@given(
    arrived_streams(),
    st.sampled_from(WINDOW_PARAMS),
    st.floats(min_value=0.0, max_value=5.0),
    st.sampled_from([SumAggregate, MeanAggregate]),
)
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_tree_within_association_tolerance_for_sum_mean(
    stream, window_params, k, aggregate_cls
):
    size, slide = window_params
    __, naive_results, __, tree_results = run_pair(
        stream, size, slide, k, aggregate_cls
    )
    naive_map = {(r.key, r.window): (r.value, r.count) for r in naive_results}
    tree_map = {(r.key, r.window): (r.value, r.count) for r in tree_results}
    assert set(naive_map) == set(tree_map)
    for slot, (value, count) in naive_map.items():
        t_value, t_count = tree_map[slot]
        assert t_count == count
        assert t_value == value or abs(t_value - value) <= 1e-6 * max(1.0, abs(value))


# --------------------------------------------------------------------- #
# shared store vs per-query pipelines


@given(
    arrived_streams(value_strategy=coarse_values),
    st.lists(
        st.tuples(
            st.sampled_from([2.0, 4.0, 8.0, 16.0]),  # sizes over slide 2.0
            st.floats(min_value=0.0, max_value=5.0),  # per-query slack
        ),
        min_size=1,
        max_size=4,
    ),
)
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_shared_store_equals_private_pipelines(stream, query_configs):
    store = SharedSliceStore(2.0, CountAggregate())
    for index, (size, slack) in enumerate(query_configs):
        store.register(f"q{index}", size, slack=slack)
    shared = run_shared_slices(stream, store)
    for index, (size, slack) in enumerate(query_configs):
        solo = TreeWindowAggregateOperator(
            SlidingWindowAssigner(size, 2.0), CountAggregate(), KSlackHandler(slack)
        )
        solo_results = run_pipeline(stream, solo).results
        shared_map = {
            (r.key, r.window): (r.value, r.count) for r in shared[f"q{index}"]
        }
        solo_map = {(r.key, r.window): (r.value, r.count) for r in solo_results}
        assert shared_map == solo_map
        assert (
            store.stats_for(f"q{index}").late_dropped == solo.stats.late_dropped
        )
