"""Property-based tests for sketches, pattern matching and merging."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.handlers import KSlackHandler, NoBufferHandler
from repro.engine.pattern import (
    SequencePatternOperator,
    oracle_pattern_matches,
)
from repro.engine.sketches import HyperLogLog, P2Quantile, SpaceSaving
from repro.streams.element import StreamElement
from repro.streams.multisource import merge_streams

values = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


# --------------------------------------------------------------------- #
# P-squared


@given(st.lists(values, min_size=1, max_size=300), st.floats(min_value=0.01, max_value=0.99))
def test_p2_estimate_within_observed_range(xs, q):
    sketch = P2Quantile(q)
    for x in xs:
        sketch.observe(x)
    assert min(xs) <= sketch.value() <= max(xs)
    assert sketch.count == len(xs)


@given(st.lists(values, min_size=1, max_size=5))
def test_p2_exact_for_small_inputs(xs):
    sketch = P2Quantile(0.5)
    for x in xs:
        sketch.observe(x)
    ordered = sorted(xs)
    assert sketch.value() in ordered


# --------------------------------------------------------------------- #
# HyperLogLog


@given(st.lists(st.integers(min_value=0, max_value=10**9), max_size=300))
def test_hll_idempotent_under_duplication(items):
    once = HyperLogLog(precision=10)
    twice = HyperLogLog(precision=10)
    for item in items:
        once.add(item)
        twice.add(item)
        twice.add(item)
    assert once.estimate() == twice.estimate()


@given(
    st.lists(st.integers(min_value=0, max_value=10**9), max_size=200),
    st.lists(st.integers(min_value=0, max_value=10**9), max_size=200),
)
def test_hll_merge_commutative(left_items, right_items):
    def build(items):
        sketch = HyperLogLog(precision=8)
        for item in items:
            sketch.add(item)
        return sketch

    ab = build(left_items).merge(build(right_items))
    ba = build(right_items).merge(build(left_items))
    assert ab.estimate() == ba.estimate()


@given(st.sets(st.integers(min_value=0, max_value=10**9), max_size=300))
def test_hll_small_range_estimate_close(items):
    sketch = HyperLogLog(precision=12)
    for item in items:
        sketch.add(item)
    estimate = sketch.estimate()
    n = len(items)
    assert abs(estimate - n) <= max(3.0, 6 * sketch.relative_error * max(n, 1))


# --------------------------------------------------------------------- #
# SpaceSaving


@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=400),
    st.integers(min_value=1, max_value=20),
)
def test_spacesaving_mass_conservation(items, capacity):
    """Sum of tracked counters always equals the total weight added."""
    sketch = SpaceSaving(capacity)
    for item in items:
        sketch.add(item)
    assert sum(count for __, count in sketch.top(capacity)) == len(items)


@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=400),
    st.integers(min_value=1, max_value=20),
)
def test_spacesaving_never_underestimates_tracked(items, capacity):
    from collections import Counter

    sketch = SpaceSaving(capacity)
    for item in items:
        sketch.add(item)
    true_counts = Counter(items)
    for item, estimate in sketch.top(capacity):
        assert estimate >= true_counts[item]


# --------------------------------------------------------------------- #
# pattern matching


@st.composite
def typed_streams(draw):
    rows = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),  # event
                st.floats(min_value=0, max_value=20, allow_nan=False),  # delay
                st.booleans(),  # is A (else B)
            ),
            min_size=1,
            max_size=60,
        )
    )
    elements = [
        StreamElement(
            event_time=ts,
            value=(1.0 if is_a else -1.0),
            key="k",
            arrival_time=ts + delay,
            seq=i,
        )
        for i, (ts, delay, is_a) in enumerate(sorted(rows))
    ]
    return sorted(elements, key=StreamElement.arrival_sort_key)


def is_a(element):
    return element.value > 0


def is_b(element):
    return element.value < 0


def element_level_match_count(stream, within) -> int:
    """Number of (A-element, B-element) pairs — counts same-timestamp
    duplicates separately, unlike the set-based oracle."""
    count = 0
    for a in stream:
        if not is_a(a):
            continue
        for b in stream:
            if is_b(b) and a.key == b.key:
                gap = b.event_time - a.event_time
                if 0.0 < gap <= within:
                    count += 1
    return count


@given(typed_streams(), st.floats(min_value=0.1, max_value=50))
@settings(deadline=None)
def test_pattern_emits_subset_of_oracle(stream, within):
    operator = SequencePatternOperator(is_a, is_b, within=within, handler=NoBufferHandler())
    matches = []
    for element in stream:
        matches.extend(operator.process(element))
    matches.extend(operator.finish())
    emitted = [(m.key, m.first_time, m.second_time) for m in matches]
    truth = oracle_pattern_matches(stream, is_a, is_b, within)
    assert set(emitted) <= truth
    # Each element-level pair is emitted at most once (duplicates in the
    # emitted list can only come from distinct same-timestamp elements).
    assert len(emitted) <= element_level_match_count(stream, within)


@given(typed_streams(), st.floats(min_value=0.1, max_value=50))
@settings(deadline=None)
def test_pattern_complete_with_full_buffering(stream, within):
    operator = SequencePatternOperator(
        is_a, is_b, within=within, handler=KSlackHandler(100.0)
    )
    matches = []
    for element in stream:
        matches.extend(operator.process(element))
    matches.extend(operator.finish())
    emitted = {(m.key, m.first_time, m.second_time) for m in matches}
    assert emitted == oracle_pattern_matches(stream, is_a, is_b, within)


# --------------------------------------------------------------------- #
# stream merging


@st.composite
def arrived_source(draw, key):
    rows = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=10, allow_nan=False),
            ),
            max_size=40,
        )
    )
    elements = [
        StreamElement(event_time=ts, value=0.0, key=key, arrival_time=ts + d, seq=i)
        for i, (ts, d) in enumerate(sorted(rows))
    ]
    return sorted(elements, key=StreamElement.arrival_sort_key)


@given(arrived_source("a"), arrived_source("b"), arrived_source("c"))
def test_merge_streams_properties(a, b, c):
    merged = merge_streams([a, b, c])
    assert len(merged) == len(a) + len(b) + len(c)
    arrivals = [el.arrival_time for el in merged]
    assert arrivals == sorted(arrivals)
    seqs = [el.seq for el in merged]
    assert len(seqs) == len(set(seqs))
    # Per-source event/value multisets preserved.
    for source, original in (("a", a), ("b", b), ("c", c)):
        kept = sorted(el.event_time for el in merged if el.key == source)
        assert kept == sorted(el.event_time for el in original)
