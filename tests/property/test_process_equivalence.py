"""Property tests: process-pool shards are equivalent to threads/unsharded.

The executor half of the shard contract (``docs/SCALING.md``): which
:class:`~repro.engine.parallel.ShardExecutor` carries the shards must be
invisible in the output.  For the *same* shard count, the process pool
must be **bit-identical** to the thread executor on the full result list
— values, counts, emit times, flush flags — for every aggregate,
including sum/mean: routing, per-shard streams and merge fold order are
all executor-independent, so even re-associated float results agree to
the bit.  Against *unsharded* execution the usual sharding relations
apply: exact aggregates bit-identical with monotone emit times, sum/mean
within the declared ``__numeric__`` drift budget.

One warm two-worker pool (chunk_size=16, so even small streams exercise
multi-chunk dispatch) is shared across all examples — the point of the
warm-pool design — which keeps these properties affordable despite the
process round trips.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.aggregates import (
    CountAggregate,
    DistinctCountAggregate,
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
    SumAggregate,
)
from repro.engine.handlers import KSlackHandler
from repro.engine.parallel import ShardedWindowOperator, ThreadShardExecutor
from repro.engine.pipeline import run_pipeline
from repro.engine.process_pool import ProcessShardExecutor
from repro.engine.windows import SlidingWindowAssigner
from repro.streams.element import StreamElement

delays = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
event_times = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
values = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
coarse_values = st.integers(min_value=0, max_value=12).map(float)
keys = st.sampled_from(["a", "b", "c", None])
hot_keys = st.just("hot")

WINDOW_PARAMS = [(4.0, 1.0), (10.0, 2.0), (5.0, 5.0)]

ORDER_INDEPENDENT = [CountAggregate, MinAggregate, MaxAggregate, DistinctCountAggregate]

EXAMPLES = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def arrived_streams(draw, max_size=40, value_strategy=values, key_strategy=keys):
    """Arrival-ordered keyed streams with arbitrary bounded delays."""
    rows = draw(
        st.lists(
            st.tuples(event_times, delays, value_strategy, key_strategy),
            min_size=1,
            max_size=max_size,
        )
    )
    elements = [
        StreamElement(event_time=ts, value=v, arrival_time=ts + d, key=key, seq=i)
        for i, (ts, d, v, key) in enumerate(sorted(rows, key=lambda r: r[:3]))
    ]
    return sorted(elements, key=StreamElement.arrival_sort_key)


@pytest.fixture(scope="module")
def pool():
    """Warm process pool shared by every example in this module."""
    executor = ProcessShardExecutor(max_workers=2, chunk_size=16)
    yield executor
    executor.close()


def no_late_k(stream):
    """A K under which no element of ``stream`` can ever be late."""
    return max(e.arrival_time - e.event_time for e in stream) + 1e-6


def run_sharded(stream, n, size, slide, k, aggregate_cls, executor=None):
    operator = ShardedWindowOperator(
        n,
        SlidingWindowAssigner(size, slide),
        aggregate_cls(),
        lambda: KSlackHandler(k),
        executor=executor,
    )
    return run_pipeline(stream, operator).results


def canonical(results):
    return [
        (repr(r.key), r.window, r.value, r.count, r.emit_time, r.latency, r.flushed)
        for r in results
    ]


@given(
    arrived_streams(),
    st.sampled_from(WINDOW_PARAMS),
    st.integers(min_value=2, max_value=4),
    st.sampled_from(ORDER_INDEPENDENT + [SumAggregate, MeanAggregate]),
)
@EXAMPLES
def test_process_bit_identical_to_threads_for_all_aggregates(
    pool, stream, window_params, n_shards, aggregate_cls
):
    """Same shard count, different executor: bitwise-equal result lists.

    Holds even for sum/mean because routing and merge fold order are
    executor-independent — only *where* each shard computes changes.
    """
    size, slide = window_params
    k = no_late_k(stream)
    threaded = run_sharded(
        stream, n_shards, size, slide, k, aggregate_cls,
        executor=ThreadShardExecutor(),
    )
    processed = run_sharded(
        stream, n_shards, size, slide, k, aggregate_cls, executor=pool
    )
    assert canonical(processed) == canonical(threaded)


@given(
    arrived_streams(value_strategy=coarse_values, key_strategy=hot_keys),
    st.sampled_from(WINDOW_PARAMS),
    st.sampled_from(ORDER_INDEPENDENT),
)
@EXAMPLES
def test_key_skew_with_empty_shards_matches_threads(
    pool, stream, window_params, aggregate_cls
):
    """One hot key over 4 shards: 3 shards stay empty, results still agree."""
    size, slide = window_params
    k = no_late_k(stream)
    threaded = run_sharded(
        stream, 4, size, slide, k, aggregate_cls, executor=ThreadShardExecutor()
    )
    processed = run_sharded(stream, 4, size, slide, k, aggregate_cls, executor=pool)
    assert canonical(processed) == canonical(threaded)


@given(
    arrived_streams(value_strategy=coarse_values),
    st.sampled_from(WINDOW_PARAMS),
    st.integers(min_value=2, max_value=4),
    st.sampled_from(ORDER_INDEPENDENT),
)
@EXAMPLES
def test_process_matches_unsharded_for_exact_aggregates(
    pool, stream, window_params, n_shards, aggregate_cls
):
    """process(N) vs shards(1): exact values/counts, monotone emit times."""
    size, slide = window_params
    k = no_late_k(stream)
    single = run_sharded(stream, 1, size, slide, k, aggregate_cls)
    processed = run_sharded(
        stream, n_shards, size, slide, k, aggregate_cls, executor=pool
    )
    single_map = {
        (repr(r.key), r.window): (r.value, r.count, r.emit_time, r.flushed)
        for r in single
    }
    processed_map = {
        (repr(r.key), r.window): (r.value, r.count, r.emit_time, r.flushed)
        for r in processed
    }
    assert set(single_map) == set(processed_map)
    for slot, (value, count, emit_time, flushed) in single_map.items():
        p_value, p_count, p_emit, p_flushed = processed_map[slot]
        assert p_value == value  # bitwise: exact aggregates
        assert p_count == count
        assert p_emit >= emit_time
        if flushed:
            assert p_flushed


@given(
    arrived_streams(),
    st.sampled_from(WINDOW_PARAMS),
    st.integers(min_value=2, max_value=4),
    st.sampled_from([SumAggregate, MeanAggregate]),
)
@EXAMPLES
def test_process_within_drift_budget_vs_unsharded_for_sum_mean(
    pool, stream, window_params, n_shards, aggregate_cls
):
    """Cross-shard merges re-associate additions: declared budget applies."""
    size, slide = window_params
    k = no_late_k(stream)
    single = run_sharded(stream, 1, size, slide, k, aggregate_cls)
    processed = run_sharded(
        stream, n_shards, size, slide, k, aggregate_cls, executor=pool
    )
    single_map = {(r.key, r.window): (r.value, r.count) for r in single}
    processed_map = {(r.key, r.window): (r.value, r.count) for r in processed}
    assert set(single_map) == set(processed_map)
    for slot, (value, count) in single_map.items():
        p_value, p_count = processed_map[slot]
        assert p_count == count
        assert p_value == value or abs(p_value - value) <= 1e-6 * max(
            1.0, abs(value)
        )
