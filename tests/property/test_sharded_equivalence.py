"""Property tests: sharded execution is equivalent to single-shard execution.

The acceptance pin for the sharded engine (``docs/SCALING.md``): for any
stream, ``shards(N)`` produces the same windows as ``shards(1)`` —
bit-identical values for exact (order-independent) aggregates, within the
declared drift budget for sum/mean whose cross-shard merge re-associates
additions.  Emit times follow a monotone relation rather than equality:
the merged frontier is the minimum across shards, which can only lag the
global frontier, so sharding may delay an emission but never hasten it —
and, dually, a shard frontier lagging the global one means shards never
drop an element the single-shard run would keep (completeness).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.aggregates import (
    CountAggregate,
    DistinctCountAggregate,
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
    SumAggregate,
)
from repro.engine.handlers import KSlackHandler
from repro.engine.parallel import ShardedWindowOperator
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.streams.element import StreamElement

delays = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
event_times = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
values = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
coarse_values = st.integers(min_value=0, max_value=12).map(float)
keys = st.sampled_from(["a", "b", "c", None])

WINDOW_PARAMS = [(4.0, 1.0), (10.0, 2.0), (6.0, 3.0), (5.0, 5.0)]

ORDER_INDEPENDENT = [CountAggregate, MinAggregate, MaxAggregate, DistinctCountAggregate]


@st.composite
def arrived_streams(draw, max_size=60, value_strategy=values):
    """Arrival-ordered keyed streams with arbitrary bounded delays."""
    rows = draw(
        st.lists(
            st.tuples(event_times, delays, value_strategy, keys),
            min_size=1,
            max_size=max_size,
        )
    )
    elements = [
        StreamElement(event_time=ts, value=v, arrival_time=ts + d, key=key, seq=i)
        for i, (ts, d, v, key) in enumerate(sorted(rows, key=lambda r: r[:3]))
    ]
    return sorted(elements, key=StreamElement.arrival_sort_key)


def no_late_k(stream):
    """A K under which no element of ``stream`` can ever be late."""
    return max(e.arrival_time - e.event_time for e in stream) + 1e-6


def run_sharded(stream, n, size, slide, k, aggregate_cls, mode="naive"):
    operator = ShardedWindowOperator(
        n,
        SlidingWindowAssigner(size, slide),
        aggregate_cls(),
        lambda: KSlackHandler(k),
        mode=mode,
    )
    return run_pipeline(stream, operator).results


@given(
    arrived_streams(value_strategy=coarse_values),
    st.sampled_from(WINDOW_PARAMS),
    st.integers(min_value=2, max_value=6),
    st.sampled_from(ORDER_INDEPENDENT),
)
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_sharded_bit_identical_for_exact_aggregates(
    stream, window_params, n_shards, aggregate_cls
):
    """shards(N) == shards(1) values, bitwise, for exact aggregates.

    K is large enough that nothing is late, so every sharding sees every
    element: groups, values and counts must agree exactly.  Emit times
    follow the contract's monotone relation instead of equality — the
    merged frontier is the *minimum* across shards, which can only lag
    the single-shard (global) frontier, so sharding can delay a window's
    emission (or defer it to the end-of-stream flush) but never hasten it.
    """
    size, slide = window_params
    k = no_late_k(stream)
    single = run_sharded(stream, 1, size, slide, k, aggregate_cls)
    sharded = run_sharded(stream, n_shards, size, slide, k, aggregate_cls)
    single_map = {
        (repr(r.key), r.window): (r.value, r.count, r.emit_time, r.flushed)
        for r in single
    }
    sharded_map = {
        (repr(r.key), r.window): (r.value, r.count, r.emit_time, r.flushed)
        for r in sharded
    }
    assert set(single_map) == set(sharded_map)
    for slot, (value, count, emit_time, flushed) in single_map.items():
        s_value, s_count, s_emit, s_flushed = sharded_map[slot]
        assert s_value == value  # bitwise: exact aggregates
        assert s_count == count
        assert s_emit >= emit_time
        if flushed:  # single-shard flush implies the lagging gate flushed too
            assert s_flushed


@given(
    arrived_streams(),
    st.sampled_from(WINDOW_PARAMS),
    st.integers(min_value=2, max_value=6),
    st.sampled_from([SumAggregate, MeanAggregate]),
)
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_sharded_within_drift_budget_for_sum_mean(
    stream, window_params, n_shards, aggregate_cls
):
    """Cross-shard merges re-associate additions: declared budget applies."""
    size, slide = window_params
    k = no_late_k(stream)
    single = run_sharded(stream, 1, size, slide, k, aggregate_cls)
    sharded = run_sharded(stream, n_shards, size, slide, k, aggregate_cls)
    single_map = {(r.key, r.window): (r.value, r.count) for r in single}
    sharded_map = {(r.key, r.window): (r.value, r.count) for r in sharded}
    assert set(single_map) == set(sharded_map)
    for slot, (value, count) in single_map.items():
        s_value, s_count = sharded_map[slot]
        assert s_count == count
        assert s_value == value or abs(s_value - value) <= 1e-6 * max(
            1.0, abs(value)
        )


@given(
    arrived_streams(value_strategy=coarse_values, max_size=40),
    st.sampled_from(WINDOW_PARAMS),
    st.floats(min_value=0.0, max_value=5.0),
    st.sampled_from(ORDER_INDEPENDENT),
)
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_sharded_is_at_least_as_complete_under_late_drops(
    stream, window_params, k, aggregate_cls
):
    """With arbitrary K (late drops allowed), shards drop no extra element.

    A shard's frontier is the running maximum over *its* elements only, so
    it can only lag the global frontier: anything on time in the
    single-shard run is on time in its shard too (the completeness half of
    the shard contract).  Hence every single-shard group appears in the
    sharded output with at least the same count, and whenever the counts
    agree — the shard dropped exactly the same elements — the value is
    bitwise equal.
    """
    size, slide = window_params
    single = run_sharded(stream, 1, size, slide, k, aggregate_cls)
    sharded = run_sharded(stream, 4, size, slide, k, aggregate_cls)
    single_map = {(r.key, r.window): (r.value, r.count) for r in single}
    sharded_map = {(r.key, r.window): (r.value, r.count) for r in sharded}
    assert set(single_map) <= set(sharded_map)
    for slot, (value, count) in single_map.items():
        s_value, s_count = sharded_map[slot]
        assert s_count >= count
        if s_count == count:
            assert s_value == value


@given(
    arrived_streams(value_strategy=coarse_values, max_size=40),
    st.integers(min_value=2, max_value=5),
    st.sampled_from(["sliced", "tree"]),
)
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_sharded_execution_mode_is_value_transparent(stream, n_shards, mode):
    """Per-shard naive/sliced/tree modes all merge to the same windows."""
    k = no_late_k(stream)
    naive = run_sharded(stream, n_shards, 4.0, 1.0, k, CountAggregate)
    other = run_sharded(stream, n_shards, 4.0, 1.0, k, CountAggregate, mode=mode)
    project = lambda rs: sorted(  # noqa: E731 - tiny local projection
        (repr(r.key), r.window, r.value, r.count, r.flushed) for r in rs
    )
    assert project(other) == project(naive)
