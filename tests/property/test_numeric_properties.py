"""Property tests for the numeric layer.

Three contracts, each over hypothesis-generated value lists:

* **Scalar ≡ batched, bit-for-bit** — ``SumAggregate``/``MeanAggregate``
  fold batches through the *same* Neumaier sequence as repeated ``add``,
  so the twins agree exactly (including across the 32-element threshold
  where the old numpy fast path used to reassociate).
* **Variance merge matches the library** — splitting a window at any
  point (including empty and single-element sides) and merging the
  Chan partials agrees with :func:`statistics.pvariance` within the
  declared reassoc-tolerant budget.
* **NumSan never fires on honest aggregates** — random windows through
  the shipped sum/mean/variance implementations stay within the drift
  budget their ``__numeric__`` annotation declares; the sanitizer
  completes without raising and its observed drift obeys the bound.
"""

from __future__ import annotations

import math
import statistics

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.numeric.numsan import DRIFT_BOUNDS, NumSan
from repro.engine.aggregates import (
    MeanAggregate,
    SumAggregate,
    VarianceAggregate,
    make_aggregate,
)

#: Wide but finite magnitudes: large enough to force cancellation and
#: rounding, small enough that squaring (variance) stays finite.
values_lists = st.lists(
    st.floats(min_value=-1e12, max_value=1e12, allow_nan=False),
    min_size=0,
    max_size=96,
)


@settings(max_examples=100, deadline=None)
@given(values=values_lists, split=st.integers(min_value=0, max_value=96))
def test_scalar_and_batched_folds_are_bit_identical(values, split):
    # Cover the old numpy threshold: sizes up to 96 include >= 32-element
    # batches, where add_many used to switch to a reassociating fast path.
    for aggregate in (SumAggregate(), MeanAggregate()):
        scalar = aggregate.create()
        for value in values:
            aggregate.add(scalar, value)
        batched = aggregate.create()
        head, tail = values[: min(split, len(values))], values[min(split, len(values)) :]
        aggregate.add_many(batched, head)
        aggregate.add_many(batched, tail)
        assert scalar == batched  # full accumulator state, not just result
        scalar_result = aggregate.result(scalar)
        batched_result = aggregate.result(batched)
        assert scalar_result == batched_result or (
            math.isnan(scalar_result) and math.isnan(batched_result)
        )


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=64,
    ),
    split=st.integers(min_value=0, max_value=64),
)
def test_variance_merge_matches_pvariance(values, split):
    # Split anywhere — split=0 merges an empty left partial, split>=len
    # an empty right one; single-element sides hit the n=1 corner of
    # Chan's combine.
    aggregate = VarianceAggregate()
    cut = min(split, len(values))
    left = aggregate.create()
    aggregate.add_many(left, values[:cut])
    right = aggregate.create()
    aggregate.add_many(right, values[cut:])
    merged = aggregate.merge(left, right)
    expected = statistics.pvariance(values)
    actual = aggregate.result(merged)
    bound = DRIFT_BOUNDS[VarianceAggregate.__numeric__]
    scale = max(abs(expected), 1e-9)
    assert abs(actual - expected) <= bound * scale + 1e-18


def test_variance_single_element_and_empty_corners():
    aggregate = VarianceAggregate()
    empty = aggregate.create()
    assert math.isnan(aggregate.result(empty))
    single = aggregate.create()
    aggregate.add(single, 7.5)
    assert aggregate.result(single) == 0.0
    # empty-merge identities in both directions
    assert aggregate.result(aggregate.merge(single, aggregate.create())) == 0.0
    carried = aggregate.merge(aggregate.create(), single)
    assert aggregate.result(carried) == 0.0


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=64,
    ),
    name=st.sampled_from(["sum", "mean", "variance"]),
)
def test_numsan_accepts_honest_aggregates(values, name):
    san = NumSan(exact_every=2)  # sample the Fraction reference densely
    shadow = san.shadow_aggregate(make_aggregate(name))
    accumulator = shadow.create()
    shadow.add_many(accumulator, values)
    shadow.result(accumulator)  # raises SanitizerError on a violation
    stats = san.report.stats[name]
    assert stats.windows_checked == 1
    assert stats.max_rel_drift <= stats.bound
