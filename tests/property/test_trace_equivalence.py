"""Property test: tracing is observation only, never interference.

Hypothesis generates random disordered streams, handlers and batch sizes
and asserts that a run with a :class:`TraceRecorder` attached (detail mode
on, live registry plugged in) produces **bit-identical** observable state
to the untraced run: window results, observed errors, late drops and
released counts.  Trace hooks execute after the fact on values the engine
already computed, so even re-associating aggregates must match exactly —
both runs execute the same arithmetic in the same order.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.aqk import AQKSlackHandler
from repro.core.spec import QualityTarget
from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import make_aggregate
from repro.engine.handlers import KSlackHandler, NoBufferHandler
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.streams.element import StreamElement

HANDLERS = {
    "no-buffer": lambda: NoBufferHandler(),
    "k-slack": lambda: KSlackHandler(0.8),
    "aqk-quality": lambda: AQKSlackHandler(
        QualityTarget(0.05), "mean", window_size=3.0, warmup_elements=20
    ),
}


@st.composite
def scenarios(draw):
    n = draw(st.integers(min_value=30, max_value=70))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    delays = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    values = draw(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    handler_name = draw(st.sampled_from(sorted(HANDLERS)))
    aggregate_name = draw(st.sampled_from(["count", "mean", "max"]))
    batch_size = draw(st.sampled_from([0, 7, 32]))

    event_time = 0.0
    elements = []
    for seq in range(n):
        event_time += gaps[seq]
        elements.append(
            StreamElement(
                event_time=event_time,
                value=values[seq],
                arrival_time=event_time + delays[seq],
                seq=seq,
            )
        )
    elements.sort(key=StreamElement.arrival_sort_key)
    return elements, handler_name, aggregate_name, batch_size


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(scenarios())
def test_traced_run_is_bit_identical_to_untraced(scenario):
    elements, handler_name, aggregate_name, batch_size = scenario

    def make_operator():
        return WindowAggregateOperator(
            SlidingWindowAssigner(3.0, 1.0),
            make_aggregate(aggregate_name),
            HANDLERS[handler_name](),
            feedback_horizon=6.0,
        )

    plain = run_pipeline(list(elements), make_operator(), batch_size=batch_size)

    recorder = TraceRecorder(detail=True)
    registry = MetricsRegistry()
    traced = run_pipeline(
        list(elements),
        make_operator(),
        batch_size=batch_size,
        trace=recorder,
        registry=registry,
    )

    assert len(recorder.events) > 0
    assert len(plain.results) == len(traced.results)
    for expected, actual in zip(plain.results, traced.results):
        assert (
            expected.key,
            expected.window,
            expected.value,
            expected.count,
            expected.emit_time,
            expected.latency,
            expected.revision,
            expected.flushed,
        ) == (
            actual.key,
            actual.window,
            actual.value,
            actual.count,
            actual.emit_time,
            actual.latency,
            actual.revision,
            actual.flushed,
        )
    assert plain.observed_errors == traced.observed_errors
    assert plain.metrics.late_dropped == traced.metrics.late_dropped
    assert plain.metrics.released_count == traced.metrics.released_count
    assert plain.metrics.n_elements == traced.metrics.n_elements
    assert plain.metrics.n_results == traced.metrics.n_results
    # The live registry saw the same totals the metrics object reports.
    assert registry.counter("pipeline.elements_in").value == traced.metrics.n_elements
    assert registry.counter("pipeline.results_out").value == traced.metrics.n_results
