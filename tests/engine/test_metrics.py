"""RunMetrics as a registry view, and LatencySummary edge cases."""

import math

from repro.engine.metrics import METRIC_NAMES, LatencySummary, RunMetrics
from repro.obs.registry import MetricsRegistry


class TestLatencySummary:
    def test_empty_input_is_count_zero_all_nan(self):
        summary = LatencySummary.from_values([])
        assert summary.count == 0
        for field in ("mean", "p50", "p95", "p99", "maximum"):
            assert math.isnan(getattr(summary, field))

    def test_single_value(self):
        summary = LatencySummary.from_values([2.5])
        assert summary.count == 1
        assert summary.mean == 2.5
        assert summary.p50 == 2.5
        assert summary.p95 == 2.5
        assert summary.p99 == 2.5
        assert summary.maximum == 2.5

    def test_nan_values_are_dropped(self):
        summary = LatencySummary.from_values([1.0, math.nan, 3.0])
        assert summary.count == 2
        assert summary.mean == 2.0
        assert summary.maximum == 3.0

    def test_all_nan_behaves_like_empty(self):
        summary = LatencySummary.from_values([math.nan, math.nan])
        assert summary.count == 0
        assert math.isnan(summary.p95)

    def test_percentiles_ordered(self):
        summary = LatencySummary.from_values([float(i) for i in range(100)])
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum


class TestRunMetricsRegistryView:
    def test_default_construction_matches_legacy_behaviour(self):
        metrics = RunMetrics(n_elements=10, n_results=3, wall_time_s=2.0)
        assert metrics.n_elements == 10
        assert metrics.n_results == 3
        assert metrics.throughput_eps == 5.0
        assert metrics.late_dropped == 0
        assert metrics.slack_timeline == []

    def test_fields_are_registry_backed(self):
        registry = MetricsRegistry()
        metrics = RunMetrics(registry)
        metrics.n_elements = 42
        assert registry.counter(METRIC_NAMES["n_elements"]).value == 42
        registry.counter(METRIC_NAMES["late_dropped"]).inc(3)
        assert metrics.late_dropped == 3

    def test_live_registry_values_survive_construction(self):
        """Constructing a view over a mid-flight registry must not reset it."""
        registry = MetricsRegistry()
        registry.counter(METRIC_NAMES["n_elements"]).inc(17)
        registry.gauge(METRIC_NAMES["max_buffered"]).set(9)
        metrics = RunMetrics(registry)
        assert metrics.n_elements == 17
        assert metrics.max_buffered == 9

    def test_nonzero_initializers_overwrite(self):
        registry = MetricsRegistry()
        registry.counter(METRIC_NAMES["n_elements"]).inc(17)
        metrics = RunMetrics(registry, n_elements=100)
        assert metrics.n_elements == 100

    def test_throughput_nan_without_wall_time(self):
        assert math.isnan(RunMetrics(n_elements=5).throughput_eps)

    def test_as_dict_and_repr_cover_scalars(self):
        metrics = RunMetrics(n_elements=2, n_results=1, max_buffered=4)
        payload = metrics.as_dict()
        assert payload["n_elements"] == 2
        assert payload["max_buffered"] == 4
        assert set(payload) == set(METRIC_NAMES)
        assert "n_elements=2" in repr(metrics)
