"""Deterministic scalar vs batched execution equivalence.

One seeded disordered stream, every disorder handler (including the
adaptive handler in all three target modes), both window operators, and
batch sizes that do not divide the stream length.  Emit times, latencies,
counts, keys, windows, late drops, released counts, observed-error
sequences and slack timelines must match the scalar run exactly; window
values and error magnitudes are compared with a tiny relative tolerance
because bulk folds may re-associate floating-point sums.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.aqk import AQKSlackHandler
from repro.core.spec import BoundedQualityTarget, LatencyBudget, QualityTarget
from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import (
    CountAggregate,
    MaxAggregate,
    MeanAggregate,
    MedianAggregate,
    SumAggregate,
)
from repro.engine.handlers import KSlackHandler, MPKSlackHandler, NoBufferHandler
from repro.engine.pipeline import run_pipeline
from repro.engine.sliced_op import SlicedWindowAggregateOperator
from repro.engine.watermarks import (
    FixedLagWatermarkHandler,
    HeuristicWatermarkHandler,
    PerfectWatermarkHandler,
)
from repro.engine.windows import SlidingWindowAssigner
from repro.errors import ConfigurationError
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement

RTOL = 1e-9


@pytest.fixture(scope="module")
def stream() -> list[StreamElement]:
    values = np.random.default_rng(42)
    base = [
        StreamElement(
            event_time=i * 0.05,
            key=f"k{i % 3}",
            value=float(values.uniform(0.0, 100.0)),
        )
        for i in range(800)
    ]
    return inject_disorder(base, ExponentialDelay(0.6), np.random.default_rng(7))


HANDLERS = {
    "no-buffer": lambda stream: NoBufferHandler(),
    "k-slack": lambda stream: KSlackHandler(1.0),
    "mp-k-slack": lambda stream: MPKSlackHandler(),
    "fixed-watermark": lambda stream: FixedLagWatermarkHandler(1.0),
    "heuristic-watermark": lambda stream: HeuristicWatermarkHandler(),
    "perfect-watermark": lambda stream: PerfectWatermarkHandler(stream),
    "aqk-quality": lambda stream: AQKSlackHandler(
        QualityTarget(0.05), "mean", window_size=4.0
    ),
    "aqk-bounded": lambda stream: AQKSlackHandler(
        BoundedQualityTarget(0.05, 2.0), "mean", window_size=4.0
    ),
    "aqk-budget": lambda stream: AQKSlackHandler(
        LatencyBudget(1.5), "mean", window_size=4.0
    ),
}

OPERATORS = {
    "naive": WindowAggregateOperator,
    "sliced": SlicedWindowAggregateOperator,
}

AGGREGATES = {
    "count": CountAggregate,
    "sum": SumAggregate,
    "mean": MeanAggregate,
    "max": MaxAggregate,
    "median": MedianAggregate,
}

# Every handler appears with both operators, every aggregate appears at
# least twice, and batch sizes never divide the 800-element stream.
CASES = [
    ("no-buffer", "naive", "mean", 7),
    ("no-buffer", "sliced", "median", 256),
    ("k-slack", "naive", "count", 97),
    ("k-slack", "sliced", "mean", 10**6),
    ("mp-k-slack", "naive", "sum", 13),
    ("mp-k-slack", "sliced", "max", 256),
    ("fixed-watermark", "naive", "max", 97),
    ("fixed-watermark", "sliced", "count", 7),
    ("heuristic-watermark", "naive", "median", 63),
    ("heuristic-watermark", "sliced", "sum", 97),
    ("perfect-watermark", "naive", "mean", 256),
    ("perfect-watermark", "sliced", "count", 511),
    ("aqk-quality", "naive", "mean", 97),
    ("aqk-quality", "sliced", "median", 63),
    ("aqk-bounded", "naive", "count", 97),
    ("aqk-bounded", "sliced", "mean", 31),
    ("aqk-budget", "naive", "mean", 256),
    ("aqk-budget", "sliced", "median", 31),
]


def close(a: float, b: float) -> bool:
    if math.isnan(a) and math.isnan(b):
        return True
    return a == b or abs(a - b) <= RTOL * max(1.0, abs(a), abs(b))


def assert_equivalent(scalar, batched) -> None:
    assert len(scalar.results) == len(batched.results)
    for expected, actual in zip(scalar.results, batched.results):
        assert expected.key == actual.key
        assert expected.window == actual.window
        assert expected.count == actual.count
        assert expected.emit_time == actual.emit_time
        assert expected.latency == actual.latency
        assert expected.flushed == actual.flushed
        assert close(expected.value, actual.value), (expected, actual)
    assert scalar.metrics.late_dropped == batched.metrics.late_dropped
    assert scalar.metrics.released_count == batched.metrics.released_count
    assert len(scalar.observed_errors) == len(batched.observed_errors)
    for expected, actual in zip(scalar.observed_errors, batched.observed_errors):
        assert close(expected, actual)
    assert len(scalar.metrics.slack_timeline) == len(batched.metrics.slack_timeline)
    for expected, actual in zip(
        scalar.metrics.slack_timeline, batched.metrics.slack_timeline
    ):
        assert expected.arrival_time == actual.arrival_time
        assert expected.frontier == actual.frontier
        assert close(expected.slack, actual.slack)
        assert expected.buffered == actual.buffered


@pytest.mark.parametrize("handler_name,op_name,agg_name,batch_size", CASES)
def test_batched_equals_scalar(stream, handler_name, op_name, agg_name, batch_size):
    def make_operator():
        return OPERATORS[op_name](
            SlidingWindowAssigner(4.0, 1.0),
            AGGREGATES[agg_name](),
            HANDLERS[handler_name](stream),
            feedback_horizon=8.0,
        )

    scalar = run_pipeline(list(stream), make_operator(), sample_every=50)
    batched = run_pipeline(
        list(stream), make_operator(), sample_every=50, batch_size=batch_size
    )
    assert_equivalent(scalar, batched)
    assert scalar.metrics.released_count > 0


@pytest.mark.parametrize("handler_name", sorted(HANDLERS))
def test_offer_many_matches_offer(stream, handler_name):
    """Handler-level contract: chunked offer_many replays offer exactly."""
    scalar = HANDLERS[handler_name](stream)
    bulk = HANDLERS[handler_name](stream)
    chunk_size = 93
    for start in range(0, len(stream), chunk_size):
        chunk = stream[start : start + chunk_size]
        released, checkpoints = bulk.offer_many(chunk)
        assert len(checkpoints) == len(chunk)
        assert checkpoints[-1][0] == len(released)
        prev_offset = 0
        for element, (end_offset, frontier) in zip(chunk, checkpoints):
            expected = scalar.offer(element)
            assert [
                (e.event_time, e.seq) for e in released[prev_offset:end_offset]
            ] == [(e.event_time, e.seq) for e in expected]
            assert frontier == scalar.frontier
            prev_offset = end_offset
        assert bulk.frontier == scalar.frontier
        assert bulk.released_count() == scalar.released_count()


def test_negative_batch_size_rejected(stream):
    operator = WindowAggregateOperator(
        SlidingWindowAssigner(4.0, 1.0), CountAggregate(), KSlackHandler(1.0)
    )
    with pytest.raises(ConfigurationError):
        run_pipeline(stream, operator, batch_size=-1)


def test_process_many_empty_chunk(stream):
    operator = WindowAggregateOperator(
        SlidingWindowAssigner(4.0, 1.0), CountAggregate(), KSlackHandler(1.0)
    )
    assert operator.process_many([]) == []
