"""Tests for slice-based sliding-window aggregation.

The contract is semantic equivalence with the naive operator; most tests
therefore run both over the same stream and compare results exactly.
"""

import pytest

from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import (
    CountAggregate,
    MaxAggregate,
    MeanAggregate,
    MedianAggregate,
    SumAggregate,
)
from repro.engine.handlers import KSlackHandler, MPKSlackHandler, NoBufferHandler
from repro.engine.pipeline import run_pipeline
from repro.engine.sliced_op import SlicedWindowAggregateOperator
from repro.engine.windows import SlidingWindowAssigner, TumblingWindowAssigner
from repro.errors import ConfigurationError
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.generators import generate_stream


def make_stream(rng, duration=60, rate=50, mean_delay=0.5, keys=None):
    return inject_disorder(
        generate_stream(duration=duration, rate=rate, rng=rng, keys=keys),
        ExponentialDelay(mean_delay),
        rng,
    )


def result_map(results):
    return {
        (r.key, r.window): (r.value, r.count, r.latency, r.flushed) for r in results
    }


def assert_equivalent(stream, assigner, aggregate_factory, handler_factory):
    naive = WindowAggregateOperator(assigner, aggregate_factory(), handler_factory())
    sliced = SlicedWindowAggregateOperator(
        assigner, aggregate_factory(), handler_factory()
    )
    naive_out = run_pipeline(stream, naive)
    sliced_out = run_pipeline(stream, sliced)
    naive_map = result_map(naive_out.results)
    sliced_map = result_map(sliced_out.results)
    assert set(naive_map) == set(sliced_map)
    for slot, (value, count, latency, flushed) in naive_map.items():
        s_value, s_count, s_latency, s_flushed = sliced_map[slot]
        assert s_value == pytest.approx(value, nan_ok=True), slot
        assert s_count == count, slot
        assert s_latency == pytest.approx(latency), slot
        assert s_flushed == flushed, slot
    assert naive.stats.late_dropped == sliced.stats.late_dropped


class TestEquivalence:
    @pytest.mark.parametrize(
        "aggregate_factory",
        [CountAggregate, SumAggregate, MeanAggregate, MaxAggregate, MedianAggregate],
        ids=["count", "sum", "mean", "max", "median"],
    )
    def test_aggregates_match_naive(self, rng, aggregate_factory):
        stream = make_stream(rng)
        assert_equivalent(
            stream,
            SlidingWindowAssigner(10, 2),
            aggregate_factory,
            lambda: KSlackHandler(1.0),
        )

    @pytest.mark.parametrize(
        "handler_factory",
        [NoBufferHandler, lambda: KSlackHandler(0.25), MPKSlackHandler],
        ids=["no-buffer", "k-slack", "mp-k-slack"],
    )
    def test_handlers_match_naive(self, rng, handler_factory):
        stream = make_stream(rng, mean_delay=1.0)
        assert_equivalent(
            stream, SlidingWindowAssigner(10, 2), CountAggregate, handler_factory
        )

    def test_tumbling_windows(self, rng):
        stream = make_stream(rng)
        assert_equivalent(
            stream, TumblingWindowAssigner(5.0), SumAggregate, lambda: KSlackHandler(0.5)
        )

    def test_keyed_streams(self, rng):
        stream = make_stream(rng, keys=("a", "b", "c"))
        assert_equivalent(
            stream,
            SlidingWindowAssigner(10, 2),
            MeanAggregate,
            lambda: KSlackHandler(0.5),
        )

    def test_observed_errors_match_for_emitted_windows(self, rng):
        """Feedback samples agree for windows both operators emitted."""
        stream = make_stream(rng, duration=120, mean_delay=1.0)
        naive = WindowAggregateOperator(
            SlidingWindowAssigner(10, 2), CountAggregate(), NoBufferHandler(),
            feedback_horizon=20.0,
        )
        sliced = SlicedWindowAggregateOperator(
            SlidingWindowAssigner(10, 2), CountAggregate(), NoBufferHandler(),
            feedback_horizon=20.0,
        )
        run_pipeline(stream, naive)
        run_pipeline(stream, sliced)
        # The sliced operator omits missed-window (phantom) samples, so
        # compare only the overall magnitude.
        naive_mean = sum(naive.stats.observed_errors) / len(naive.stats.observed_errors)
        sliced_mean = sum(sliced.stats.observed_errors) / len(
            sliced.stats.observed_errors
        )
        assert sliced_mean == pytest.approx(naive_mean, abs=0.02)


class TestSlicedSpecifics:
    def test_unaligned_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            SlicedWindowAggregateOperator(
                SlidingWindowAssigner(10, 3), CountAggregate(), NoBufferHandler()
            )

    def test_session_style_assigner_rejected(self):
        with pytest.raises(ConfigurationError):
            SlicedWindowAggregateOperator(
                object(), CountAggregate(), NoBufferHandler()  # type: ignore[arg-type]
            )

    def test_slice_store_is_pruned(self, rng):
        stream = make_stream(rng, duration=240)
        operator = SlicedWindowAggregateOperator(
            SlidingWindowAssigner(10, 2),
            CountAggregate(),
            KSlackHandler(1.0),
            track_feedback=False,
        )
        run_pipeline(stream, operator)
        # Retention is a few windows, not the whole stream (120 slices).
        assert operator.slice_count() < 30

    def test_fewer_adds_than_naive(self, rng):
        """The point of slicing: one accumulator add per element."""
        stream = make_stream(rng, duration=30)

        calls = {"naive": 0, "sliced": 0}

        class CountingAggregate(CountAggregate):
            def __init__(self, label):
                self.label = label

            def add(self, accumulator, value):
                calls[self.label] += 1
                super().add(accumulator, value)

        run_pipeline(
            stream,
            WindowAggregateOperator(
                SlidingWindowAssigner(10, 2),
                CountingAggregate("naive"),
                NoBufferHandler(),
            ),
        )
        run_pipeline(
            stream,
            SlicedWindowAggregateOperator(
                SlidingWindowAssigner(10, 2),
                CountingAggregate("sliced"),
                NoBufferHandler(),
            ),
        )
        assert calls["sliced"] == len(stream)
        assert calls["naive"] > 4 * calls["sliced"]
