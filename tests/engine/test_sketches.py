"""Tests for the constant-memory sketches."""

import math

import numpy as np
import pytest

from repro.engine.sketches import (
    ApproxDistinctAggregate,
    ApproxQuantileAggregate,
    HyperLogLog,
    P2Quantile,
    SpaceSaving,
)
from repro.errors import ConfigurationError


class TestP2Quantile:
    def test_exact_below_five_values(self):
        sketch = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            sketch.observe(value)
        assert sketch.value() == 3.0

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value())

    @pytest.mark.parametrize("q", [0.1, 0.5, 0.9, 0.99])
    def test_uniform_accuracy(self, q, rng):
        sketch = P2Quantile(q)
        data = rng.random(20000)
        for value in data:
            sketch.observe(float(value))
        assert sketch.value() == pytest.approx(q, abs=0.03)

    @pytest.mark.parametrize("q", [0.5, 0.95])
    def test_gaussian_accuracy(self, q, rng):
        sketch = P2Quantile(q)
        data = rng.normal(10.0, 2.0, size=20000)
        for value in data:
            sketch.observe(float(value))
        assert sketch.value() == pytest.approx(float(np.quantile(data, q)), abs=0.2)

    def test_exponential_tail_accuracy(self, rng):
        sketch = P2Quantile(0.95)
        data = rng.exponential(1.0, size=30000)
        for value in data:
            sketch.observe(float(value))
        exact = float(np.quantile(data, 0.95))
        assert sketch.value() == pytest.approx(exact, rel=0.1)

    def test_monotone_input(self):
        sketch = P2Quantile(0.5)
        for value in range(1000):
            sketch.observe(float(value))
        assert sketch.value() == pytest.approx(500.0, abs=30.0)

    def test_count_tracked(self):
        sketch = P2Quantile(0.5)
        for value in range(10):
            sketch.observe(float(value))
        assert sketch.count == 10

    @pytest.mark.parametrize("q", [0.0, 1.0, -0.5, 1.5])
    def test_bad_q_rejected(self, q):
        with pytest.raises(ConfigurationError):
            P2Quantile(q)

    def test_estimate_within_observed_range(self, rng):
        sketch = P2Quantile(0.5)
        data = rng.random(500) * 100
        for value in data:
            sketch.observe(float(value))
        assert data.min() <= sketch.value() <= data.max()


class TestHyperLogLog:
    def test_small_cardinality_near_exact(self):
        sketch = HyperLogLog(precision=12)
        for i in range(100):
            sketch.add(i)
        assert sketch.estimate() == pytest.approx(100, abs=3)

    def test_large_cardinality_within_error_bound(self):
        sketch = HyperLogLog(precision=12)
        n = 50000
        for i in range(n):
            sketch.add(f"item-{i}")
        assert sketch.estimate() == pytest.approx(n, rel=4 * sketch.relative_error)

    def test_duplicates_ignored(self):
        sketch = HyperLogLog(precision=12)
        for __ in range(1000):
            sketch.add("same")
        assert sketch.estimate() == pytest.approx(1, abs=0.5)

    def test_merge_equals_union(self):
        left = HyperLogLog(precision=10)
        right = HyperLogLog(precision=10)
        for i in range(2000):
            left.add(f"a-{i}")
            right.add(f"b-{i}")
        for i in range(500):  # overlap
            left.add(f"c-{i}")
            right.add(f"c-{i}")
        union = HyperLogLog(precision=10)
        for i in range(2000):
            union.add(f"a-{i}")
            union.add(f"b-{i}")
        for i in range(500):
            union.add(f"c-{i}")
        left.merge(right)
        assert left.estimate() == pytest.approx(union.estimate(), rel=1e-9)

    def test_merge_precision_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            HyperLogLog(10).merge(HyperLogLog(12))

    def test_bad_precision_rejected(self):
        with pytest.raises(ConfigurationError):
            HyperLogLog(precision=3)
        with pytest.raises(ConfigurationError):
            HyperLogLog(precision=19)

    def test_relative_error_decreases_with_precision(self):
        assert HyperLogLog(14).relative_error < HyperLogLog(10).relative_error


class TestSpaceSaving:
    def test_exact_when_under_capacity(self):
        sketch = SpaceSaving(capacity=10)
        for item, count in [("a", 5), ("b", 3), ("c", 1)]:
            for __ in range(count):
                sketch.add(item)
        assert sketch.top(3) == [("a", 5), ("b", 3), ("c", 1)]

    def test_heavy_hitters_survive_eviction(self, rng):
        sketch = SpaceSaving(capacity=20)
        # One heavy item among a long tail of singletons.
        items = ["heavy"] * 500 + [f"tail-{i}" for i in range(2000)]
        rng.shuffle(items)
        for item in items:
            sketch.add(item)
        top = sketch.top(1)
        assert top[0][0] == "heavy"
        # Overestimate bounded: est <= true + min_counter.
        assert top[0][1] >= 500

    def test_guaranteed_filters_uncertain(self):
        sketch = SpaceSaving(capacity=2)
        for item in ("a", "a", "a", "b", "c", "d"):
            sketch.add(item)
        guaranteed = dict(sketch.guaranteed(2))
        assert "a" in guaranteed

    def test_weighted_add(self):
        sketch = SpaceSaving(capacity=4)
        sketch.add("a", weight=10)
        sketch.add("b")
        assert sketch.top(1) == [("a", 10)]

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            SpaceSaving(0)
        sketch = SpaceSaving(2)
        with pytest.raises(ConfigurationError):
            sketch.add("a", weight=0)


class TestApproxAggregates:
    def test_approx_quantile_close_to_exact(self, rng):
        aggregate = ApproxQuantileAggregate(0.95)
        accumulator = aggregate.create()
        data = rng.random(5000)
        for value in data:
            aggregate.add(accumulator, float(value))
        assert aggregate.result(accumulator) == pytest.approx(
            float(np.quantile(data, 0.95)), abs=0.05
        )

    def test_approx_quantile_merge_rejected(self):
        aggregate = ApproxQuantileAggregate(0.5)
        with pytest.raises(ConfigurationError):
            aggregate.merge(aggregate.create(), aggregate.create())

    def test_approx_distinct_close_to_exact(self):
        aggregate = ApproxDistinctAggregate(precision=12)
        accumulator = aggregate.create()
        for i in range(3000):
            aggregate.add(accumulator, i % 1000)
        assert aggregate.result(accumulator) == pytest.approx(1000, rel=0.1)

    def test_approx_distinct_merge(self):
        aggregate = ApproxDistinctAggregate(precision=12)
        left, right = aggregate.create(), aggregate.create()
        for i in range(500):
            aggregate.add(left, i)
            aggregate.add(right, i + 250)
        merged = aggregate.merge(left, right)
        assert aggregate.result(merged) == pytest.approx(750, rel=0.1)

    def test_usable_in_windowed_query(self, small_disordered_stream):
        from repro.queries.language import ContinuousQuery
        from repro.engine.windows import sliding

        run = (
            ContinuousQuery()
            .from_elements(small_disordered_stream)
            .window(sliding(5, 1))
            .aggregate(ApproxDistinctAggregate())
            .with_quality(0.1)
            .run(assess=True)
        )
        assert run.results
        assert run.report.mean_error < 0.2

    def test_error_model_kinds(self):
        assert ApproxQuantileAggregate(0.5).error_model_kind == "rank"
        assert ApproxDistinctAggregate().error_model_kind == "distinct"
