"""Tests for the interval join operator."""

import pytest

from repro.engine.handlers import KSlackHandler, NoBufferHandler
from repro.engine.join import IntervalJoinOperator, oracle_join_pairs
from repro.errors import ConfigurationError
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import generate_stream


def side_by_value_sign(element: StreamElement) -> str:
    return "left" if element.value >= 0 else "right"


def make_two_sided(rng, duration=30, rate=60):
    """Keyed stream where positive values are 'left', negative 'right'."""
    base = generate_stream(duration=duration, rate=rate, rng=rng, keys=("a", "b"))
    signed = [
        StreamElement(
            event_time=el.event_time,
            value=(1.0 if i % 2 == 0 else -1.0),
            key=el.key,
            seq=el.seq,
        )
        for i, el in enumerate(base)
    ]
    return signed


def drive_join(operator, elements):
    results = []
    for element in elements:
        results.extend(operator.process(element))
    results.extend(operator.finish())
    return results


class TestIntervalJoin:
    def test_small_deterministic(self):
        elements = [
            StreamElement(event_time=1.0, value=1.0, key="k", arrival_time=1.0, seq=0),
            StreamElement(event_time=1.5, value=-1.0, key="k", arrival_time=1.5, seq=1),
            StreamElement(event_time=5.0, value=-1.0, key="k", arrival_time=5.0, seq=2),
        ]
        operator = IntervalJoinOperator(
            bound=1.0, handler=NoBufferHandler(), side_selector=side_by_value_sign
        )
        results = drive_join(operator, elements)
        assert len(results) == 1
        assert results[0].left_time == 1.0
        assert results[0].right_time == 1.5

    def test_key_isolation(self):
        elements = [
            StreamElement(event_time=1.0, value=1.0, key="a", arrival_time=1.0, seq=0),
            StreamElement(event_time=1.2, value=-1.0, key="b", arrival_time=1.2, seq=1),
        ]
        operator = IntervalJoinOperator(
            bound=1.0, handler=NoBufferHandler(), side_selector=side_by_value_sign
        )
        assert drive_join(operator, elements) == []

    def test_in_order_join_is_complete(self, rng):
        elements = make_two_sided(rng)
        arrived = [el.with_arrival(el.event_time) for el in elements]
        operator = IntervalJoinOperator(
            bound=0.5, handler=NoBufferHandler(), side_selector=side_by_value_sign
        )
        results = drive_join(operator, arrived)
        expected = oracle_join_pairs(arrived, 0.5, side_by_value_sign)
        emitted = {(r.key, r.left_time, r.right_time) for r in results}
        assert emitted == expected

    def test_pairs_emitted_exactly_once(self, rng):
        elements = make_two_sided(rng)
        arrived = [el.with_arrival(el.event_time) for el in elements]
        operator = IntervalJoinOperator(
            bound=0.5, handler=NoBufferHandler(), side_selector=side_by_value_sign
        )
        results = drive_join(operator, arrived)
        emitted = [(r.key, r.left_time, r.right_time) for r in results]
        assert len(emitted) == len(set(emitted))

    def test_disorder_loses_pairs_without_buffering(self, rng):
        elements = make_two_sided(rng, duration=60, rate=80)
        arrived = inject_disorder(elements, ExponentialDelay(1.0), rng)
        expected = oracle_join_pairs(arrived, 0.5, side_by_value_sign)

        no_buffer = IntervalJoinOperator(
            bound=0.5, handler=NoBufferHandler(), side_selector=side_by_value_sign
        )
        lossy = {
            (r.key, r.left_time, r.right_time)
            for r in drive_join(no_buffer, arrived)
        }
        buffered = IntervalJoinOperator(
            bound=0.5, handler=KSlackHandler(8.0), side_selector=side_by_value_sign
        )
        recovered = {
            (r.key, r.left_time, r.right_time)
            for r in drive_join(buffered, arrived)
        }
        assert lossy <= expected
        assert recovered <= expected
        assert len(recovered) > len(lossy)

    def test_store_is_pruned(self, rng):
        elements = make_two_sided(rng, duration=120, rate=40)
        arrived = [el.with_arrival(el.event_time) for el in elements]
        operator = IntervalJoinOperator(
            bound=1.0, handler=NoBufferHandler(), side_selector=side_by_value_sign
        )
        for element in arrived:
            operator.process(element)
        # Retention is bounded by the join bound, not the stream length.
        assert operator.stored_count() < len(arrived) / 4

    def test_negative_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            IntervalJoinOperator(
                bound=-1.0, handler=NoBufferHandler(), side_selector=side_by_value_sign
            )

    def test_bad_side_rejected(self):
        operator = IntervalJoinOperator(
            bound=1.0, handler=NoBufferHandler(), side_selector=lambda el: "middle"
        )
        with pytest.raises(ConfigurationError):
            operator.process(
                StreamElement(event_time=1.0, value=0, key="k", arrival_time=1.0)
            )
