"""Tests for the in-order oracle."""

import pytest

from repro.engine.aggregates import CountAggregate, MeanAggregate
from repro.engine.oracle import oracle_results
from repro.engine.windows import SlidingWindowAssigner, TumblingWindowAssigner, Window
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.generators import generate_stream

from tests.conftest import make_elements


class TestOracleResults:
    def test_small_tumbling_count(self):
        elements = make_elements([(1.0, 5.0), (2.0, 7.0), (11.0, 1.0), (12.0, 3.0)])
        truth = oracle_results(elements, TumblingWindowAssigner(10.0), CountAggregate())
        assert truth[(None, Window(0, 10))] == (2.0, 2)
        assert truth[(None, Window(10, 20))] == (2.0, 2)

    def test_small_sliding_mean(self):
        elements = make_elements([(1.0, 4.0), (6.0, 8.0)])
        truth = oracle_results(
            elements, SlidingWindowAssigner(size=10, slide=5), MeanAggregate()
        )
        # t=1 is in [0,10); t=6 is in [0,10) and [5,15).
        assert truth[(None, Window(0, 10))][0] == pytest.approx(6.0)
        assert truth[(None, Window(5, 15))][0] == pytest.approx(8.0)

    def test_only_nonempty_windows(self):
        elements = make_elements([(1.0, 1.0), (55.0, 1.0)])
        truth = oracle_results(elements, TumblingWindowAssigner(10.0), CountAggregate())
        assert set(truth) == {(None, Window(0, 10)), (None, Window(50, 60))}

    def test_input_order_irrelevant(self, rng):
        stream = generate_stream(duration=30, rate=40, rng=rng)
        disordered = inject_disorder(stream, ExponentialDelay(1.0), rng)
        assigner = SlidingWindowAssigner(5, 1)
        aggregate = MeanAggregate()
        assert oracle_results(stream, assigner, aggregate) == oracle_results(
            disordered, assigner, aggregate
        )

    def test_keyed_streams(self, rng):
        stream = generate_stream(duration=20, rate=40, rng=rng, keys=("a", "b"))
        truth = oracle_results(stream, TumblingWindowAssigner(5.0), CountAggregate())
        keys = {slot[0] for slot in truth}
        assert keys == {"a", "b"}
        total = sum(count for __, count in truth.values())
        assert total == len(stream)

    def test_empty_stream(self):
        assert oracle_results([], TumblingWindowAssigner(10.0), CountAggregate()) == {}
