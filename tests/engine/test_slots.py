"""Guard: hot-path classes define ``__slots__`` (no per-instance dicts).

Every class below is instantiated per element, per slice, or per window on
the engine's hot paths; an accidental ``__dict__`` (one removed slot, one
added attribute outside ``__slots__``, a dataclass losing ``slots=True``)
silently costs ~100 bytes and a dict lookup per instance.  The assertion is
on *instances*, not the class: a slotted subclass of an unslotted base
still carries a dict.
"""

import pytest

from repro.engine.aggregate_op import OperatorStats, _ClosedRecord, _SliceAssignCache
from repro.engine.buffer import SortingBuffer
from repro.engine.metrics import LatencySummary, SlackSample
from repro.engine.operator import WindowResult
from repro.engine.partial_tree import _QueryWindowView, _SharedQuery, _SliceTree
from repro.engine.aggregates import CountAggregate
from repro.engine.windows import SlidingWindowAssigner, Window
from repro.obs.trace import TraceEvent
from repro.streams.element import StreamElement, Watermark
from repro.streams.timebase import EventTimeFrontier, MonotoneFrontier, SimulatedClock


def _tree():
    return _SliceTree(CountAggregate(), 1.0, 8)


def _view():
    return _QueryWindowView(_tree(), 8.0, 8, 40.0, True)


HOT_INSTANCES = [
    StreamElement(event_time=0.0, value=1.0, arrival_time=0.0, seq=0),
    Watermark(timestamp=0.0),
    Window(0.0, 1.0),
    WindowResult(
        key=None, window=Window(0.0, 1.0), value=1.0, count=1, emit_time=1.0,
        latency=0.0,
    ),
    MonotoneFrontier(),
    SimulatedClock(),
    EventTimeFrontier(),
    SortingBuffer(),
    _SliceAssignCache(SlidingWindowAssigner(8, 1)),
    _ClosedRecord(accumulator=[], emitted_value=0.0, emitted_count=0, end=1.0),
    OperatorStats(),
    LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, maximum=0.0),
    SlackSample(arrival_time=0.0, slack=0.0, frontier=0.0, buffered=0),
    TraceEvent(kind="meta", sim_time=0.0, wall_time=0.0, fields={}),
    _tree(),
    _view(),
    _SharedQuery("q", _view(), None, 1.0),
]


@pytest.mark.parametrize(
    "instance", HOT_INSTANCES, ids=lambda obj: type(obj).__name__
)
def test_hot_path_instances_have_no_dict(instance):
    assert not hasattr(instance, "__dict__"), (
        f"{type(instance).__name__} instances carry a __dict__; "
        "add/restore __slots__ (or slots=True for dataclasses)"
    )
    assert hasattr(type(instance), "__slots__")
