"""Tests for the session-window aggregation operator."""

import pytest

from repro.engine.aggregates import CountAggregate, SumAggregate
from repro.engine.handlers import KSlackHandler, NoBufferHandler
from repro.engine.pipeline import run_pipeline
from repro.engine.session_op import SessionAggregateOperator
from repro.errors import ConfigurationError

from tests.conftest import make_arrived


class TestSessionAggregateOperator:
    def test_single_session(self):
        stream = make_arrived(
            [(1.0, 1.0, 1.0), (2.0, 2.0, 1.0), (3.0, 3.0, 1.0), (20.0, 20.0, 1.0)]
        )
        operator = SessionAggregateOperator(
            gap=5.0, aggregate=CountAggregate(), handler=NoBufferHandler()
        )
        output = run_pipeline(stream, operator)
        sessions = {(r.window.start, r.window.end): r.value for r in output.results}
        assert sessions[(1.0, 8.0)] == 3.0  # session [1,3] closed with end 3+gap
        assert sessions[(20.0, 25.0)] == 1.0

    def test_sessions_split_by_gap(self):
        stream = make_arrived([(0.0, 0.0, 1.0), (10.0, 10.0, 1.0), (30.0, 30.0, 1.0)])
        operator = SessionAggregateOperator(
            gap=2.0, aggregate=CountAggregate(), handler=NoBufferHandler()
        )
        output = run_pipeline(stream, operator)
        assert len(output.results) == 3

    def test_out_of_order_event_extends_session_with_buffering(self):
        # Events 0 and 4 belong to one session (gap 5); event 4 arrives late.
        stream = make_arrived(
            [
                (0.0, 0.0, 1.0),
                (8.0, 8.0, 1.0),  # separate session start (distance 8 > 5)
                (4.0, 8.5, 1.0),  # late bridger: merges 0 and 8 into one
                (30.0, 30.0, 1.0),
            ]
        )
        operator = SessionAggregateOperator(
            gap=5.0, aggregate=CountAggregate(), handler=KSlackHandler(10.0)
        )
        output = run_pipeline(stream, operator)
        sessions = {(r.window.start, r.window.end): r.value for r in output.results}
        assert sessions[(0.0, 13.0)] == 3.0  # one merged session covering 0..8

    def test_late_event_dropped_without_buffering(self):
        stream = make_arrived(
            [
                (0.0, 0.0, 1.0),
                (20.0, 20.0, 1.0),  # frontier jumps: session at 0 closes
                (1.0, 21.0, 1.0),  # belongs to the closed session: dropped
                (40.0, 40.0, 1.0),
            ]
        )
        operator = SessionAggregateOperator(
            gap=3.0, aggregate=CountAggregate(), handler=NoBufferHandler()
        )
        output = run_pipeline(stream, operator)
        assert operator.late_dropped == 1
        first = [r for r in output.results if r.window.start == 0.0][0]
        assert first.value == 1.0

    def test_sum_aggregation(self):
        stream = make_arrived([(1.0, 1.0, 2.5), (2.0, 2.0, 3.5), (30.0, 30.0, 1.0)])
        operator = SessionAggregateOperator(
            gap=5.0, aggregate=SumAggregate(), handler=NoBufferHandler()
        )
        output = run_pipeline(stream, operator)
        first = [r for r in output.results if r.window.start == 1.0][0]
        assert first.value == pytest.approx(6.0)

    def test_keys_isolated(self):
        stream = make_arrived([(1.0, 1.0, 1.0), (1.5, 1.5, 1.0), (30.0, 30.0, 1.0)])
        keyed = [
            s.__class__(
                event_time=s.event_time,
                value=s.value,
                key=("a" if i == 0 else "b"),
                arrival_time=s.arrival_time,
                seq=s.seq,
            )
            for i, s in enumerate(stream)
        ]
        operator = SessionAggregateOperator(
            gap=5.0, aggregate=CountAggregate(), handler=NoBufferHandler()
        )
        output = run_pipeline(keyed, operator)
        early = [r for r in output.results if r.window.start < 10]
        assert {r.key for r in early} == {"a", "b"}

    def test_bad_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionAggregateOperator(
                gap=0.0, aggregate=CountAggregate(), handler=NoBufferHandler()
            )

    def test_flushed_sessions_marked(self):
        stream = make_arrived([(1.0, 1.0, 1.0)])
        operator = SessionAggregateOperator(
            gap=5.0, aggregate=CountAggregate(), handler=NoBufferHandler()
        )
        output = run_pipeline(stream, operator)
        assert len(output.results) == 1
        assert output.results[0].flushed
