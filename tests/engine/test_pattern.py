"""Tests for the sequence-pattern (CEP) operator."""

import pytest

from repro.engine.handlers import KSlackHandler, NoBufferHandler
from repro.engine.pattern import (
    SequencePatternOperator,
    oracle_pattern_matches,
    pattern_recall,
)
from repro.engine.watermarks import FixedLagWatermarkHandler
from repro.errors import ConfigurationError
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import generate_stream

from tests.conftest import make_arrived


def is_a(element: StreamElement) -> bool:
    return element.value >= 1.0


def is_b(element: StreamElement) -> bool:
    return element.value < 0.0


def drive(operator, elements):
    matches = []
    for element in elements:
        matches.extend(operator.process(element))
    matches.extend(operator.finish())
    return matches


def ab_stream(rng, duration=60, rate=60, mean_delay=0.5):
    """Keyed stream alternating A (value 1) and B (value -1) events."""
    base = generate_stream(duration=duration, rate=rate, rng=rng, keys=("x", "y"))
    typed = [
        StreamElement(
            event_time=el.event_time,
            value=(1.0 if i % 3 else -1.0),  # 1/3 of events are B's
            key=el.key,
            seq=el.seq,
        )
        for i, el in enumerate(base)
    ]
    return inject_disorder(typed, ExponentialDelay(mean_delay), rng)


class TestSmallScenarios:
    def test_basic_match(self):
        stream = make_arrived([(1.0, 1.0, 1.0), (2.0, 2.0, -1.0)])
        operator = SequencePatternOperator(is_a, is_b, within=5.0, handler=NoBufferHandler())
        matches = drive(operator, stream)
        assert len(matches) == 1
        assert matches[0].first_time == 1.0
        assert matches[0].second_time == 2.0

    def test_within_bound_enforced(self):
        stream = make_arrived([(1.0, 1.0, 1.0), (7.0, 7.0, -1.0)])
        operator = SequencePatternOperator(is_a, is_b, within=5.0, handler=NoBufferHandler())
        assert drive(operator, stream) == []

    def test_order_matters(self):
        # B before A: no match.
        stream = make_arrived([(1.0, 1.0, -1.0), (2.0, 2.0, 1.0)])
        operator = SequencePatternOperator(is_a, is_b, within=5.0, handler=NoBufferHandler())
        assert drive(operator, stream) == []

    def test_simultaneous_events_do_not_match(self):
        stream = make_arrived([(1.0, 1.0, 1.0), (1.0, 1.0, -1.0)])
        operator = SequencePatternOperator(is_a, is_b, within=5.0, handler=NoBufferHandler())
        assert drive(operator, stream) == []

    def test_keys_isolated(self):
        stream = [
            StreamElement(event_time=1.0, value=1.0, key="x", arrival_time=1.0, seq=0),
            StreamElement(event_time=2.0, value=-1.0, key="y", arrival_time=2.0, seq=1),
        ]
        operator = SequencePatternOperator(is_a, is_b, within=5.0, handler=NoBufferHandler())
        assert drive(operator, stream) == []

    def test_multiple_firsts_all_match(self):
        stream = make_arrived(
            [(1.0, 1.0, 1.0), (2.0, 2.0, 1.0), (3.0, 3.0, -1.0)]
        )
        operator = SequencePatternOperator(is_a, is_b, within=5.0, handler=NoBufferHandler())
        assert len(drive(operator, stream)) == 2

    def test_late_second_recovered_by_buffer(self):
        stream = make_arrived(
            [
                (1.0, 1.0, 1.0),
                (20.0, 20.0, 1.0),  # advances the clock
                (2.0, 20.5, -1.0),  # late B for the A at t=1
            ]
        )
        eager = SequencePatternOperator(is_a, is_b, within=5.0, handler=NoBufferHandler())
        assert drive(eager, list(stream)) == []

        buffered = SequencePatternOperator(
            is_a, is_b, within=5.0, handler=KSlackHandler(30.0)
        )
        matches = drive(buffered, list(stream))
        assert len(matches) == 1

    def test_bad_within_rejected(self):
        with pytest.raises(ConfigurationError):
            SequencePatternOperator(is_a, is_b, within=0.0, handler=NoBufferHandler())


class TestAgainstOracle:
    def test_in_order_detection_complete(self, rng):
        stream = [el.with_arrival(el.event_time) for el in
                  sorted(ab_stream(rng), key=lambda e: e.event_sort_key())]
        operator = SequencePatternOperator(is_a, is_b, within=2.0, handler=NoBufferHandler())
        matches = drive(operator, stream)
        truth = oracle_pattern_matches(stream, is_a, is_b, within=2.0)
        assert {(m.key, m.first_time, m.second_time) for m in matches} == truth

    def test_matches_unique(self, rng):
        stream = ab_stream(rng)
        operator = SequencePatternOperator(is_a, is_b, within=2.0, handler=KSlackHandler(3.0))
        matches = drive(operator, stream)
        keys = [(m.key, m.first_time, m.second_time) for m in matches]
        assert len(keys) == len(set(keys))

    def test_disorder_loses_matches_without_buffering(self, rng):
        stream = ab_stream(rng, mean_delay=1.0)
        truth = oracle_pattern_matches(stream, is_a, is_b, within=2.0)

        eager = SequencePatternOperator(is_a, is_b, within=2.0, handler=NoBufferHandler())
        eager_recall = pattern_recall(drive(eager, stream), truth)

        buffered = SequencePatternOperator(
            is_a, is_b, within=2.0, handler=KSlackHandler(8.0)
        )
        buffered_recall = pattern_recall(drive(buffered, stream), truth)
        assert eager_recall < buffered_recall

    def test_watermark_handler_unsorted_release_still_detects(self, rng):
        """Watermark handlers release unsorted; B-before-A release order
        must still produce the match."""
        stream = ab_stream(rng, mean_delay=0.5)
        truth = oracle_pattern_matches(stream, is_a, is_b, within=2.0)
        operator = SequencePatternOperator(
            is_a, is_b, within=2.0, handler=FixedLagWatermarkHandler(lag=8.0)
        )
        recall = pattern_recall(drive(operator, stream), truth)
        assert recall > 0.95

    def test_store_pruned(self, rng):
        stream = ab_stream(rng, duration=120)
        operator = SequencePatternOperator(is_a, is_b, within=2.0, handler=NoBufferHandler())
        for element in stream:
            operator.process(element)
        assert operator.stored_count() < len(stream) / 4

    def test_late_counter(self, rng):
        stream = ab_stream(rng, mean_delay=2.0)
        operator = SequencePatternOperator(is_a, is_b, within=1.0, handler=NoBufferHandler())
        drive(operator, stream)
        assert operator.late_dropped > 0

    def test_latency_property(self):
        stream = make_arrived([(1.0, 1.0, 1.0), (2.0, 2.5, -1.0)])
        operator = SequencePatternOperator(is_a, is_b, within=5.0, handler=NoBufferHandler())
        matches = drive(operator, stream)
        assert matches[0].latency == pytest.approx(0.5)

    def test_pattern_recall_empty_oracle(self):
        import math

        assert math.isnan(pattern_recall([], set()))
