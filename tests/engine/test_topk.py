"""Tests for exact and approximate top-k aggregates."""

import pytest

from repro.engine.topk import ApproxTopKAggregate, TopKCountAggregate
from repro.errors import ConfigurationError


def fold(aggregate, values):
    accumulator = aggregate.create()
    for value in values:
        aggregate.add(accumulator, value)
    return accumulator


DATA = ["a"] * 5 + ["b"] * 3 + ["c"] * 2 + ["d"]


class TestTopKCountAggregate:
    def test_ranking(self):
        aggregate = TopKCountAggregate(k=2)
        accumulator = fold(aggregate, DATA)
        assert aggregate.result(accumulator) == (("a", 5), ("b", 3))

    def test_ties_broken_by_value(self):
        aggregate = TopKCountAggregate(k=2)
        accumulator = fold(aggregate, ["x", "y"])
        assert aggregate.result(accumulator) == (("x", 1), ("y", 1))

    def test_fewer_values_than_k(self):
        aggregate = TopKCountAggregate(k=10)
        accumulator = fold(aggregate, ["a", "a"])
        assert aggregate.result(accumulator) == (("a", 2),)

    def test_empty(self):
        aggregate = TopKCountAggregate(k=3)
        assert aggregate.result(aggregate.create()) == ()

    def test_merge(self):
        aggregate = TopKCountAggregate(k=1)
        left = fold(aggregate, ["a", "b"])
        right = fold(aggregate, ["a", "a"])
        merged = aggregate.merge(left, right)
        assert aggregate.result(merged) == (("a", 3),)

    def test_result_is_hashable(self):
        aggregate = TopKCountAggregate(k=2)
        accumulator = fold(aggregate, DATA)
        hash(aggregate.result(accumulator))

    def test_bad_k_rejected(self):
        with pytest.raises(ConfigurationError):
            TopKCountAggregate(k=0)

    def test_late_add_after_snapshot(self):
        aggregate = TopKCountAggregate(k=1)
        accumulator = fold(aggregate, ["a", "b", "b"])
        __ = aggregate.result(accumulator)
        aggregate.add(accumulator, "a")
        aggregate.add(accumulator, "a")
        assert aggregate.result(accumulator) == (("a", 3),)


class TestApproxTopKAggregate:
    def test_matches_exact_when_capacity_suffices(self, rng):
        values = list(rng.choice(["a", "b", "c", "d", "e"], p=[0.4, 0.3, 0.15, 0.1, 0.05], size=2000))
        exact = TopKCountAggregate(k=3)
        approx = ApproxTopKAggregate(k=3, capacity=50)
        exact_top = exact.result(fold(exact, values))
        approx_top = approx.result(fold(approx, values))
        assert [item for item, __ in exact_top] == [item for item, __ in approx_top]
        for (__, exact_count), (__, approx_count) in zip(exact_top, approx_top):
            assert approx_count >= exact_count  # overestimate only

    def test_heavy_hitter_survives_tiny_capacity(self, rng):
        values = ["heavy"] * 400 + [f"tail-{i}" for i in range(1000)]
        rng.shuffle(values)
        aggregate = ApproxTopKAggregate(k=1, capacity=10)
        top = aggregate.result(fold(aggregate, values))
        assert top[0][0] == "heavy"

    def test_merge_rejected(self):
        aggregate = ApproxTopKAggregate(k=2)
        with pytest.raises(ConfigurationError):
            aggregate.merge(aggregate.create(), aggregate.create())

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            ApproxTopKAggregate(k=5, capacity=2)
        with pytest.raises(ConfigurationError):
            ApproxTopKAggregate(k=0)

    def test_default_capacity(self):
        assert ApproxTopKAggregate(k=3).capacity == 30


class TestTopKInWindowedQuery:
    def test_end_to_end(self, rng):
        """Top-k over windows; disorder handled; exact-match quality."""
        from repro.core.quality import assess_quality
        from repro.engine.aggregate_op import WindowAggregateOperator
        from repro.engine.handlers import MPKSlackHandler
        from repro.engine.oracle import oracle_results
        from repro.engine.pipeline import run_pipeline
        from repro.engine.windows import TumblingWindowAssigner
        from repro.streams.delay import ExponentialDelay
        from repro.streams.disorder import inject_disorder
        from repro.streams.element import StreamElement
        from repro.streams.generators import generate_stream

        base = generate_stream(duration=40, rate=50, rng=rng)
        categorized = [
            StreamElement(
                event_time=el.event_time,
                value=("hot" if i % 3 else "cold"),
                seq=el.seq,
            )
            for i, el in enumerate(base)
        ]
        stream = inject_disorder(categorized, ExponentialDelay(0.3), rng)
        assigner = TumblingWindowAssigner(5.0)
        aggregate = TopKCountAggregate(k=1)
        operator = WindowAggregateOperator(assigner, aggregate, MPKSlackHandler())
        output = run_pipeline(stream, operator)
        truth = oracle_results(stream, assigner, aggregate)
        report = assess_quality(output.results, truth, threshold=0.5)
        # Conservative buffering: every window's top-1 list matches exactly.
        assert report.mean_error == 0.0
