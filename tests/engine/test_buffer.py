"""Tests for the sorting buffer."""

from repro.engine.buffer import SortingBuffer
from repro.streams.element import StreamElement


def el(ts: float, seq: int = 0) -> StreamElement:
    return StreamElement(event_time=ts, value=ts, seq=seq)


class TestSortingBuffer:
    def test_empty(self):
        buffer = SortingBuffer()
        assert len(buffer) == 0
        assert buffer.peek_event_time() is None
        assert buffer.release_until(100.0) == []
        assert buffer.drain() == []

    def test_release_until_threshold_inclusive(self):
        buffer = SortingBuffer()
        for ts in (3.0, 1.0, 2.0):
            buffer.push(el(ts))
        released = buffer.release_until(2.0)
        assert [e.event_time for e in released] == [1.0, 2.0]
        assert len(buffer) == 1

    def test_release_in_event_time_order(self):
        buffer = SortingBuffer()
        for ts in (5.0, 1.0, 4.0, 2.0, 3.0):
            buffer.push(el(ts))
        released = buffer.release_until(10.0)
        assert [e.event_time for e in released] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_ties_broken_by_seq(self):
        buffer = SortingBuffer()
        buffer.push(el(1.0, seq=2))
        buffer.push(el(1.0, seq=1))
        released = buffer.release_until(1.0)
        assert [e.seq for e in released] == [1, 2]

    def test_peek(self):
        buffer = SortingBuffer()
        buffer.push(el(5.0))
        buffer.push(el(2.0))
        assert buffer.peek_event_time() == 2.0

    def test_drain(self):
        buffer = SortingBuffer()
        for ts in (3.0, 1.0, 2.0):
            buffer.push(el(ts))
        assert [e.event_time for e in buffer.drain()] == [1.0, 2.0, 3.0]
        assert len(buffer) == 0

    def test_max_size_high_water_mark(self):
        buffer = SortingBuffer()
        for ts in (1.0, 2.0, 3.0):
            buffer.push(el(ts))
        buffer.release_until(10.0)
        buffer.push(el(4.0))
        assert buffer.max_size == 3

    def test_interleaved_push_release(self):
        buffer = SortingBuffer()
        buffer.push(el(1.0))
        buffer.push(el(3.0))
        assert [e.event_time for e in buffer.release_until(1.5)] == [1.0]
        buffer.push(el(2.0))  # late insert below current content
        assert [e.event_time for e in buffer.release_until(3.0)] == [2.0, 3.0]
