"""Tests for the sorting buffer."""

from repro.engine.buffer import SortingBuffer
from repro.streams.element import StreamElement


def el(ts: float, seq: int = 0) -> StreamElement:
    return StreamElement(event_time=ts, value=ts, seq=seq)


class TestSortingBuffer:
    def test_empty(self):
        buffer = SortingBuffer()
        assert len(buffer) == 0
        assert buffer.peek_event_time() is None
        assert buffer.release_until(100.0) == []
        assert buffer.drain() == []

    def test_release_until_threshold_inclusive(self):
        buffer = SortingBuffer()
        for ts in (3.0, 1.0, 2.0):
            buffer.push(el(ts))
        released = buffer.release_until(2.0)
        assert [e.event_time for e in released] == [1.0, 2.0]
        assert len(buffer) == 1

    def test_release_in_event_time_order(self):
        buffer = SortingBuffer()
        for ts in (5.0, 1.0, 4.0, 2.0, 3.0):
            buffer.push(el(ts))
        released = buffer.release_until(10.0)
        assert [e.event_time for e in released] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_ties_broken_by_seq(self):
        buffer = SortingBuffer()
        buffer.push(el(1.0, seq=2))
        buffer.push(el(1.0, seq=1))
        released = buffer.release_until(1.0)
        assert [e.seq for e in released] == [1, 2]

    def test_peek(self):
        buffer = SortingBuffer()
        buffer.push(el(5.0))
        buffer.push(el(2.0))
        assert buffer.peek_event_time() == 2.0

    def test_drain(self):
        buffer = SortingBuffer()
        for ts in (3.0, 1.0, 2.0):
            buffer.push(el(ts))
        assert [e.event_time for e in buffer.drain()] == [1.0, 2.0, 3.0]
        assert len(buffer) == 0

    def test_max_size_high_water_mark(self):
        buffer = SortingBuffer()
        for ts in (1.0, 2.0, 3.0):
            buffer.push(el(ts))
        buffer.release_until(10.0)
        buffer.push(el(4.0))
        assert buffer.max_size == 3

    def test_interleaved_push_release(self):
        buffer = SortingBuffer()
        buffer.push(el(1.0))
        buffer.push(el(3.0))
        assert [e.event_time for e in buffer.release_until(1.5)] == [1.0]
        buffer.push(el(2.0))  # late insert below current content
        assert [e.event_time for e in buffer.release_until(3.0)] == [2.0, 3.0]


class TestBulkBufferAPIs:
    def test_push_many_matches_push(self):
        import random

        rng = random.Random(5)
        timestamps = [rng.uniform(0, 100) for _ in range(500)]
        one = SortingBuffer()
        for seq, ts in enumerate(timestamps):
            one.push(el(ts, seq=seq))
        bulk = SortingBuffer()
        bulk.push_many([el(ts, seq=seq) for seq, ts in enumerate(timestamps)])
        assert [
            (e.event_time, e.seq) for e in one.release_until(200.0)
        ] == [(e.event_time, e.seq) for e in bulk.release_until(200.0)]

    def test_push_many_incremental_chunks(self):
        import random

        rng = random.Random(6)
        timestamps = [rng.uniform(0, 100) for _ in range(400)]
        one = SortingBuffer()
        bulk = SortingBuffer()
        for start in range(0, len(timestamps), 37):
            chunk = timestamps[start : start + 37]
            for seq, ts in enumerate(chunk, start):
                one.push(el(ts, seq=seq))
            bulk.push_many([el(ts, seq=seq) for seq, ts in enumerate(chunk, start)])
            threshold = max(chunk) - 20.0
            assert [
                (e.event_time, e.seq) for e in one.release_until(threshold)
            ] == [(e.event_time, e.seq) for e in bulk.release_until(threshold)]
        assert [(e.event_time, e.seq) for e in one.drain()] == [
            (e.event_time, e.seq) for e in bulk.drain()
        ]

    def test_sort_and_split_large_release(self):
        # Releasing most of a large buffer takes the sort-and-split path;
        # order and remainder must match per-element heap semantics.
        buffer = SortingBuffer()
        buffer.push_many([el(float(ts), seq=ts) for ts in range(1000, 0, -1)])
        released = buffer.release_until(900.0)
        assert [e.event_time for e in released] == [float(t) for t in range(1, 901)]
        assert len(buffer) == 100
        assert buffer.peek_event_time() == 901.0
        # The remainder must still be a valid heap for scalar pops.
        assert [e.event_time for e in buffer.release_until(902.0)] == [901.0, 902.0]

    def test_released_total(self):
        buffer = SortingBuffer()
        assert buffer.released_total == 0
        buffer.push_many([el(1.0), el(2.0), el(3.0)])
        buffer.release_until(2.0)
        assert buffer.released_total == 2
        buffer.drain()
        assert buffer.released_total == 3

    def test_push_many_empty(self):
        buffer = SortingBuffer()
        buffer.push_many([])
        assert len(buffer) == 0
        assert buffer.released_total == 0
