"""Tests for watermark-based disorder handlers."""

import pytest

from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import MeanAggregate
from repro.engine.oracle import oracle_results
from repro.engine.pipeline import run_pipeline
from repro.engine.watermarks import (
    FixedLagWatermarkHandler,
    HeuristicWatermarkHandler,
    PerfectWatermarkHandler,
)
from repro.engine.windows import SlidingWindowAssigner
from repro.errors import ConfigurationError
from repro.streams.delay import ExponentialDelay, UniformDelay
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import generate_stream


def el(ts, at):
    return StreamElement(event_time=ts, value=0.0, arrival_time=at)


class TestFixedLagWatermarkHandler:
    def test_releases_immediately_unordered(self):
        handler = FixedLagWatermarkHandler(lag=1.0)
        element = el(5.0, 5.2)
        assert handler.offer(element) == [element]

    def test_frontier_lags_max_event_time(self):
        handler = FixedLagWatermarkHandler(lag=1.0)
        handler.offer(el(5.0, 5.2))
        assert handler.frontier == 4.0
        handler.offer(el(3.0, 5.3))  # older event does not move frontier
        assert handler.frontier == 4.0

    def test_periodic_emission_batches_advances(self):
        handler = FixedLagWatermarkHandler(lag=0.0, period=10.0)
        handler.offer(el(0.0, 0.0))
        frontier_after_first = handler.frontier
        handler.offer(el(5.0, 5.0))  # within the period: no new watermark
        assert handler.frontier == frontier_after_first
        handler.offer(el(11.0, 11.0))  # period elapsed: watermark advances
        assert handler.frontier == 11.0

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedLagWatermarkHandler(lag=-1.0)
        with pytest.raises(ConfigurationError):
            FixedLagWatermarkHandler(lag=1.0, period=-1.0)

    def test_slack_is_lag(self):
        assert FixedLagWatermarkHandler(lag=2.5).current_slack == 2.5


class TestHeuristicWatermarkHandler:
    def test_lag_converges_to_delay_quantile(self, rng):
        stream = inject_disorder(
            generate_stream(duration=60, rate=100, rng=rng),
            UniformDelay(0.0, 1.0),
            rng,
        )
        handler = HeuristicWatermarkHandler(delay_quantile=0.5, update_every=50)
        for element in stream:
            handler.offer(element)
        assert handler.lag == pytest.approx(0.5, abs=0.15)

    def test_higher_quantile_means_larger_lag(self, rng):
        stream = inject_disorder(
            generate_stream(duration=60, rate=100, rng=rng),
            ExponentialDelay(0.5),
            rng,
        )
        lags = {}
        for q in (0.5, 0.95):
            handler = HeuristicWatermarkHandler(delay_quantile=q, update_every=50)
            for element in stream:
                handler.offer(element)
            lags[q] = handler.lag
        assert lags[0.95] > lags[0.5]

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            HeuristicWatermarkHandler(delay_quantile=1.5)
        with pytest.raises(ConfigurationError):
            HeuristicWatermarkHandler(window_size=0)


class TestPerfectWatermarkHandler:
    def test_yields_exact_results(self, rng):
        """Closing windows at the perfect watermark loses nothing."""
        stream = inject_disorder(
            generate_stream(duration=30, rate=50, rng=rng), ExponentialDelay(0.5), rng
        )
        assigner = SlidingWindowAssigner(size=5, slide=1)
        aggregate = MeanAggregate()
        operator = WindowAggregateOperator(
            assigner, aggregate, PerfectWatermarkHandler(stream)
        )
        output = run_pipeline(stream, operator)
        truth = oracle_results(stream, assigner, aggregate)
        emitted = {(r.key, r.window): r.value for r in output.results}
        assert set(emitted) == set(truth)
        for slot, (exact, __) in truth.items():
            assert emitted[slot] == pytest.approx(exact)

    def test_frontier_never_passes_inflight_event(self):
        # Event at t=1 arrives last: frontier must stay below 1 until then.
        stream = [
            StreamElement(event_time=2.0, value=0, arrival_time=2.0, seq=1),
            StreamElement(event_time=3.0, value=0, arrival_time=3.0, seq=2),
            StreamElement(event_time=1.0, value=0, arrival_time=4.0, seq=0),
        ]
        handler = PerfectWatermarkHandler(stream)
        handler.offer(stream[0])
        assert handler.frontier <= 1.0
        handler.offer(stream[1])
        assert handler.frontier <= 1.0
        handler.offer(stream[2])
        assert handler.frontier == 3.0

    def test_overfeeding_rejected(self):
        stream = [StreamElement(event_time=1.0, value=0, arrival_time=1.0)]
        handler = PerfectWatermarkHandler(stream)
        handler.offer(stream[0])
        with pytest.raises(ConfigurationError):
            handler.offer(stream[0])
