"""Tests for speculative processing with retractions."""

import pytest

from repro.engine.aggregates import CountAggregate, MeanAggregate
from repro.engine.oracle import oracle_results
from repro.engine.pipeline import run_pipeline
from repro.engine.retraction import (
    SpeculativeAggregateOperator,
    final_values,
    initial_latencies,
)
from repro.engine.windows import TumblingWindowAssigner
from repro.errors import ConfigurationError
from repro.streams.delay import ConstantDelay, ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.generators import generate_stream

from tests.conftest import make_arrived


class TestSpeculativeOperator:
    def test_in_order_stream_emits_no_revisions(self, rng):
        stream = inject_disorder(
            generate_stream(duration=30, rate=40, rng=rng), ConstantDelay(0.0), rng
        )
        operator = SpeculativeAggregateOperator(
            TumblingWindowAssigner(5.0), MeanAggregate()
        )
        output = run_pipeline(stream, operator)
        assert operator.revisions_emitted == 0
        assert all(r.revision == 0 for r in output.results)

    def test_late_element_triggers_revision(self):
        stream = make_arrived(
            [
                (1.0, 1.0, 1.0),
                (12.0, 12.0, 1.0),  # closes [0,10)
                (8.0, 13.0, 1.0),  # late: revision of [0,10)
            ]
        )
        operator = SpeculativeAggregateOperator(
            TumblingWindowAssigner(10.0), CountAggregate()
        )
        output = run_pipeline(stream, operator)
        revisions = [r for r in output.results if r.revision > 0]
        assert len(revisions) == 1
        assert revisions[0].window.start == 0.0
        assert revisions[0].value == 2.0

    def test_final_values_match_oracle_within_horizon(self, rng):
        stream = inject_disorder(
            generate_stream(duration=60, rate=40, rng=rng), ExponentialDelay(1.0), rng
        )
        assigner = TumblingWindowAssigner(5.0)
        aggregate = CountAggregate()
        operator = SpeculativeAggregateOperator(
            assigner, aggregate, revision_horizon=1000.0
        )
        output = run_pipeline(stream, operator)
        finals = final_values(output.results)
        truth = oracle_results(stream, assigner, aggregate)
        for slot, (exact, __) in truth.items():
            assert finals[slot] == pytest.approx(exact)

    def test_initial_latency_is_low(self, rng):
        stream = inject_disorder(
            generate_stream(duration=60, rate=40, rng=rng), ExponentialDelay(1.0), rng
        )
        operator = SpeculativeAggregateOperator(
            TumblingWindowAssigner(5.0), CountAggregate()
        )
        output = run_pipeline(stream, operator)
        latencies = initial_latencies(output.results)
        assert latencies
        assert sum(latencies) / len(latencies) < 2.0

    def test_revision_threshold_suppresses_noise(self, rng):
        stream = inject_disorder(
            generate_stream(duration=120, rate=50, rng=rng), ExponentialDelay(1.0), rng
        )
        eager = SpeculativeAggregateOperator(
            TumblingWindowAssigner(5.0), CountAggregate(), revision_threshold=0.0
        )
        lazy = SpeculativeAggregateOperator(
            TumblingWindowAssigner(5.0), CountAggregate(), revision_threshold=0.2
        )
        run_pipeline(stream, eager)
        run_pipeline(stream, lazy)
        assert lazy.revisions_emitted < eager.revisions_emitted

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            SpeculativeAggregateOperator(
                TumblingWindowAssigner(5.0), CountAggregate(), revision_horizon=-1.0
            )
        with pytest.raises(ConfigurationError):
            SpeculativeAggregateOperator(
                TumblingWindowAssigner(5.0), CountAggregate(), revision_threshold=-0.5
            )

    def test_final_values_last_wins(self):
        stream = make_arrived(
            [
                (1.0, 1.0, 1.0),
                (12.0, 12.0, 1.0),
                (8.0, 13.0, 1.0),
                (9.0, 14.0, 1.0),
            ]
        )
        operator = SpeculativeAggregateOperator(
            TumblingWindowAssigner(10.0), CountAggregate()
        )
        output = run_pipeline(stream, operator)
        finals = final_values(output.results)
        window_zero = [slot for slot in finals if slot[1].start == 0.0][0]
        assert finals[window_zero] == 3.0
