"""Tests for pipeline execution and metrics."""

import math

import pytest

from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import MeanAggregate
from repro.engine.handlers import KSlackHandler
from repro.engine.metrics import LatencySummary
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner


def make_operator(k=0.5):
    return WindowAggregateOperator(
        SlidingWindowAssigner(5, 1), MeanAggregate(), KSlackHandler(k)
    )


class TestRunPipeline:
    def test_counts(self, small_disordered_stream):
        output = run_pipeline(small_disordered_stream, make_operator())
        assert output.metrics.n_elements == len(small_disordered_stream)
        assert output.metrics.n_results == len(output.results)
        assert output.metrics.n_results > 0

    def test_wall_time_positive(self, small_disordered_stream):
        output = run_pipeline(small_disordered_stream, make_operator())
        assert output.metrics.wall_time_s > 0
        assert output.metrics.throughput_eps > 0

    def test_slack_timeline_sampled(self, small_disordered_stream):
        output = run_pipeline(small_disordered_stream, make_operator(), sample_every=50)
        assert len(output.metrics.slack_timeline) >= 1
        for sample in output.metrics.slack_timeline:
            assert sample.slack == 0.5
            assert sample.buffered >= 0

    def test_no_sampling_by_default(self, small_disordered_stream):
        output = run_pipeline(small_disordered_stream, make_operator())
        assert output.metrics.slack_timeline == []

    def test_max_buffered_recorded(self, small_disordered_stream):
        output = run_pipeline(small_disordered_stream, make_operator(k=2.0))
        assert output.metrics.max_buffered > 0

    def test_latency_summary_excludes_flushed(self, small_disordered_stream):
        output = run_pipeline(small_disordered_stream, make_operator())
        summary = output.latency_summary()
        assert summary.count == sum(1 for r in output.results if not r.flushed)
        with_flushed = output.latency_summary(include_flushed=True)
        assert with_flushed.count == len(output.results)

    def test_empty_stream(self):
        output = run_pipeline([], make_operator())
        assert output.results == []
        assert output.metrics.n_elements == 0


class TestLatencySummary:
    def test_from_values(self):
        summary = LatencySummary.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.maximum == 4.0
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum

    def test_empty(self):
        summary = LatencySummary.from_values([])
        assert summary.count == 0
        assert math.isnan(summary.mean)
