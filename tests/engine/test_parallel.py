"""Sharded execution: routing, per-shard runs, and the merge stage.

The merge-stage edge cases from the scaling contract (``docs/SCALING.md``)
each get a deterministic fixture: empty shards, a shard whose frontier
lags far behind, key skew sending all traffic to one shard, and the
``shards(1)`` configuration that must be bit-identical to unsharded
execution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.aggregates import make_aggregate
from repro.engine.handlers import KSlackHandler
from repro.engine.parallel import (
    MAX_SHARDS,
    ShardExecutor,
    ShardedWindowOperator,
    ThreadShardExecutor,
    stable_shard,
)
from repro.engine.partial_tree import make_window_operator
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.generators import generate_stream
from tests.conftest import make_arrived

ASSIGNER = SlidingWindowAssigner(size=4.0, slide=1.0)


def keyed_stream(keys=("a", "b", "c", "d"), duration=20.0, rate=40.0, seed=7):
    rng = np.random.default_rng(seed)
    return inject_disorder(
        generate_stream(duration=duration, rate=rate, rng=rng, keys=keys),
        ExponentialDelay(0.4),
        rng,
    )


def no_late_k(stream):
    """A K large enough that no element can ever be late."""
    return max(e.arrival_time - e.event_time for e in stream) + 1e-6


def sharded_operator(n, aggregate="mean", k=1.0, mode="naive", **kwargs):
    return ShardedWindowOperator(
        n,
        ASSIGNER,
        make_aggregate(aggregate),
        lambda: KSlackHandler(k),
        mode=mode,
        **kwargs,
    )


def canonical(results):
    return sorted(
        (
            r.key,
            r.window,
            float(r.value),
            r.count,
            r.emit_time,
            r.latency,
            r.revision,
            r.flushed,
        )
        for r in results
    )


def value_map(results):
    return {(r.key, r.window): (float(r.value), r.count) for r in results}


# --------------------------------------------------------------------- #
# routing


def test_stable_shard_is_deterministic_and_in_range():
    for key in ("a", "sensor-17", 42, 3.25, ("a", 1)):
        first = stable_shard(key, 8)
        assert 0 <= first < 8
        assert all(stable_shard(key, 8) == first for _ in range(5))


def test_default_routing_groups_by_element_key():
    stream = keyed_stream()
    recorder = TraceRecorder()
    run_pipeline(stream, sharded_operator(4), trace=recorder)
    ingests = list(recorder.of_kind("shard.ingest"))
    assert sum(e.fields["count"] for e in ingests) == len(stream)
    # Four keys hash onto at most four shards.
    assert len(ingests) <= 4


def test_custom_key_function_controls_routing():
    stream = keyed_stream()
    recorder = TraceRecorder()
    operator = sharded_operator(4, key_fn=lambda e: "same")
    run_pipeline(stream, operator, trace=recorder)
    ingests = list(recorder.of_kind("shard.ingest"))
    assert len(ingests) == 1  # key skew: all traffic on one shard
    assert ingests[0].fields["count"] == len(stream)


def test_unkeyed_elements_round_robin_across_all_shards():
    stream = keyed_stream(keys=None)
    assert all(e.key is None for e in stream)
    recorder = TraceRecorder()
    operator = sharded_operator(4)
    run_pipeline(stream, operator, trace=recorder)
    ingests = {e.fields["shard"]: e.fields["count"] for e in recorder.of_kind("shard.ingest")}
    assert set(ingests) == {0, 1, 2, 3}
    assert max(ingests.values()) - min(ingests.values()) <= 1


# --------------------------------------------------------------------- #
# shards(1) and key skew are bit-identical to unsharded execution


@pytest.mark.parametrize("mode", ["naive", "sliced", "tree"])
@pytest.mark.parametrize("aggregate", ["mean", "count"])
def test_single_shard_is_bit_identical_to_unsharded(mode, aggregate):
    stream = keyed_stream()
    unsharded = make_window_operator(
        mode, ASSIGNER, make_aggregate(aggregate), KSlackHandler(1.0)
    )
    base = run_pipeline(stream, unsharded)
    out = run_pipeline(stream, sharded_operator(1, aggregate, mode=mode))
    assert canonical(out.results) == canonical(base.results)
    # Late-drop accounting matches too: one shard sees the whole stream.
    assert out.metrics.late_dropped == base.metrics.late_dropped


def test_key_skew_single_hot_shard_is_bit_identical_to_unsharded():
    stream = keyed_stream()
    base = run_pipeline(
        stream,
        make_window_operator(
            "naive", ASSIGNER, make_aggregate("mean"), KSlackHandler(1.0)
        ),
    )
    skewed = sharded_operator(8, key_fn=lambda e: "hot")
    out = run_pipeline(stream, skewed)
    assert canonical(out.results) == canonical(base.results)


# --------------------------------------------------------------------- #
# merge-stage edge cases


def test_empty_shards_are_excluded_from_the_merge_gate():
    # Two keys over 16 shards: at least 14 shards never see an element and
    # must neither stall the frontier gate nor flush everything.
    stream = keyed_stream(keys=("a", "b"))
    k = no_late_k(stream)
    base = run_pipeline(
        stream,
        make_window_operator(
            "naive", ASSIGNER, make_aggregate("mean"), KSlackHandler(k)
        ),
    )
    out = run_pipeline(stream, sharded_operator(16, k=k))
    # Keyed groups live in exactly one shard: values are bitwise equal.
    assert value_map(out.results) == value_map(base.results)
    assert any(not r.flushed for r in out.results)


def test_empty_stream_finishes_empty():
    operator = sharded_operator(4)
    out = run_pipeline([], operator)
    assert out.results == []
    assert operator.handler.frontier == float("-inf")


def test_lagging_shard_gates_the_merge_frontier():
    # Shard "lead" sees event times up to 12; shard "lag" stops at 3.
    # Windows ending after the lag shard's frontier (3 - 1 = 2.0) must be
    # flushed even though the lead shard closed them long ago.
    elements = make_arrived(
        [(t, t, 1.0) for t in (0.5, 1.5, 2.5, 3.0)]  # the lag population
        + [(t, t, 1.0) for t in (4.0, 6.0, 8.0, 10.0, 12.0)]  # the lead
    )
    operator = ShardedWindowOperator(
        2,
        ASSIGNER,
        make_aggregate("count"),
        lambda: KSlackHandler(1.0),
        key_fn=lambda e: "lag" if e.event_time < 3.5 else "lead",
    )
    out = run_pipeline(elements, operator)
    lag_frontier = 3.0 - 1.0
    for result in out.results:
        if result.window.end <= lag_frontier:
            assert not result.flushed, result
        else:
            assert result.flushed, result
    assert operator.handler.frontier == pytest.approx(lag_frontier)


def test_merged_emit_time_is_the_last_shards_frontier_crossing():
    # Unkeyed round-robin over 2 shards.  Window [0, 2) closes on shard 0
    # when element (4.5) arrives at 6.0 and on shard 1 when (3.5) arrives
    # at 5.0; the merged window must be stamped with the *later* crossing.
    elements = make_arrived(
        [
            (0.5, 1.0, 1.0),  # -> shard 0
            (1.5, 2.0, 1.0),  # -> shard 1
            (3.5, 5.0, 1.0),  # -> shard 0: frontier 2.5 at arrival 5.0
            (4.5, 6.0, 1.0),  # -> shard 1: frontier 3.5 at arrival 6.0
        ]
    )
    operator = ShardedWindowOperator(
        2,
        SlidingWindowAssigner(size=2.0, slide=2.0),
        make_aggregate("count"),
        lambda: KSlackHandler(1.0),
    )
    out = run_pipeline(elements, operator)
    window_02 = [r for r in out.results if r.window.start == 0.0][0]
    assert not window_02.flushed
    assert window_02.emit_time == pytest.approx(6.0)
    assert window_02.count == 2
    assert window_02.latency == pytest.approx(6.0 - 2.0)


def test_cross_shard_groups_merge_accumulators():
    stream = keyed_stream(keys=None)  # unkeyed: every window spans shards
    k = no_late_k(stream)
    base = run_pipeline(
        stream,
        make_window_operator(
            "naive", ASSIGNER, make_aggregate("count"), KSlackHandler(k)
        ),
    )
    recorder = TraceRecorder()
    out = run_pipeline(stream, sharded_operator(4, "count", k=k), trace=recorder)
    assert value_map(out.results) == value_map(base.results)  # exact: bitwise
    merges = list(recorder.of_kind("shard.merge"))
    assert merges and max(e.fields["shards"] for e in merges) > 1


def test_cross_shard_mean_within_declared_drift():
    stream = keyed_stream(keys=None)
    k = no_late_k(stream)
    base = run_pipeline(
        stream,
        make_window_operator(
            "naive", ASSIGNER, make_aggregate("mean"), KSlackHandler(k)
        ),
    )
    out = run_pipeline(stream, sharded_operator(6, "mean", k=k))
    base_map, out_map = value_map(base.results), value_map(out.results)
    assert set(base_map) == set(out_map)
    for group, (value, count) in base_map.items():
        merged_value, merged_count = out_map[group]
        assert merged_count == count
        assert merged_value == pytest.approx(value, rel=1e-9)


def test_canonical_output_order_is_deterministic():
    stream = keyed_stream()
    first = run_pipeline(stream, sharded_operator(4)).results
    second = run_pipeline(stream, sharded_operator(4)).results
    assert canonical(first) == canonical(second)
    assert [
        (r.emit_time, r.flushed, r.window.end, r.window.start) for r in first
    ] == sorted(
        (r.emit_time, r.flushed, r.window.end, r.window.start) for r in first
    )


def test_batched_driving_matches_scalar():
    stream = keyed_stream()
    scalar = run_pipeline(stream, sharded_operator(4))
    batched = run_pipeline(stream, sharded_operator(4), batch_size=64)
    assert canonical(scalar.results) == canonical(batched.results)


def test_finish_is_idempotent():
    stream = keyed_stream()
    operator = sharded_operator(2)
    for element in stream:
        operator.process(element)
    first = operator.finish()
    assert first
    assert operator.finish() == []


# --------------------------------------------------------------------- #
# sanitizers run per shard and stay clean


@pytest.mark.parametrize("kind", ["stream", "race", "numeric"])
@pytest.mark.parametrize("mode", ["naive", "tree"])
def test_sharded_execution_is_sanitizer_clean(kind, mode):
    stream = keyed_stream(duration=10.0)
    out = run_pipeline(stream, sharded_operator(4, mode=mode), sanitize=kind)
    reference = run_pipeline(stream, sharded_operator(4, mode=mode))
    assert canonical(out.results) == canonical(reference.results)


def test_unknown_sanitizer_kind_is_rejected():
    stream = keyed_stream(duration=5.0)
    with pytest.raises(ConfigurationError):
        run_pipeline(stream, sharded_operator(2), sanitize="bogus")


def test_probe_is_rejected_for_sharded_operators():
    stream = keyed_stream(duration=5.0)
    with pytest.raises(ConfigurationError):
        run_pipeline(
            stream, sharded_operator(2), sanitize=True, sanitize_probe_every=4
        )


# --------------------------------------------------------------------- #
# observability


def test_trace_records_shard_ingest_and_merge():
    stream = keyed_stream()
    recorder = TraceRecorder()
    out = run_pipeline(stream, sharded_operator(4), trace=recorder)
    ingested = sum(e.fields["count"] for e in recorder.of_kind("shard.ingest"))
    assert ingested == len(stream)
    merges = list(recorder.of_kind("shard.merge"))
    assert len(merges) == len(out.results)
    by_group = {
        (e.fields["key"], e.fields["start"], e.fields["end"]): e.fields["count"]
        for e in merges
    }
    for result in out.results:
        group = (result.key, result.window.start, result.window.end)
        assert by_group[group] == result.count


def test_registry_collects_per_shard_metrics():
    stream = keyed_stream()
    registry = MetricsRegistry()
    run_pipeline(stream, sharded_operator(4), registry=registry)
    snapshot = registry.snapshot()
    shard_elements = [
        value
        for name, value in snapshot.items()
        if name.startswith("shard.") and name.endswith(".elements_in")
    ]
    assert sum(shard_elements) == len(stream)


def test_handler_view_reports_combined_state():
    stream = keyed_stream()
    operator = sharded_operator(4, k=2.0)
    view = operator.handler
    assert view.describe() == "sharded(4)xk-slack(K=2s)"
    assert view.buffered_count() == 0
    for element in stream:
        operator.process(element)
    assert view.buffered_count() == len(stream)  # routed, not yet executed
    assert view.frontier == float("-inf")
    operator.finish()
    assert view.buffered_count() == 0
    assert view.released_count() == len(stream)
    assert view.current_slack == pytest.approx(2.0)
    assert view.frontier > float("-inf")
    assert view.next_adaptation_offset(stream, 0, len(stream)) is None


# --------------------------------------------------------------------- #
# executor seam and validation


def test_serial_executor_matches_threads():
    stream = keyed_stream()
    threaded = run_pipeline(stream, sharded_operator(4, executor=ThreadShardExecutor()))
    serial = run_pipeline(stream, sharded_operator(4, executor=ShardExecutor()))
    assert canonical(threaded.results) == canonical(serial.results)


def test_thread_executor_caps_workers_at_cpu_count():
    import os
    import threading

    cpus = os.cpu_count() or 1
    default = ThreadShardExecutor()
    # Default cap: min(n_tasks, cpu_count) — one thread per shard beyond
    # the core count was pure oversubscription.
    assert default.worker_count(1) == 1
    assert default.worker_count(cpus) == cpus
    assert default.worker_count(cpus + 40) == cpus
    capped = ThreadShardExecutor(max_workers=2)
    assert capped.worker_count(1) == 1
    assert capped.worker_count(64) == 2

    seen = set()

    def note(_task):
        seen.add(threading.current_thread().name)
        return None

    tasks = [object()] * 8
    capped.run(note, tasks)
    assert len(seen) <= 2


@pytest.mark.parametrize("bad", [0, -1, 1.5, True])
def test_thread_executor_rejects_invalid_max_workers(bad):
    with pytest.raises(ConfigurationError):
        ThreadShardExecutor(max_workers=bad)


def test_thread_executor_bounded_pool_matches_unbounded():
    stream = keyed_stream()
    wide = run_pipeline(stream, sharded_operator(8, executor=ThreadShardExecutor()))
    narrow = run_pipeline(
        stream, sharded_operator(8, executor=ThreadShardExecutor(max_workers=2))
    )
    assert canonical(wide.results) == canonical(narrow.results)


def test_worker_exception_propagates_to_the_coordinator():
    class BoomAggregate:
        __numeric__ = "exact"
        name = "boom"
        error_model_kind = "additive_mass"

        def create(self):
            return []

        def add(self, accumulator, value):
            raise RuntimeError("boom in shard worker")

        def add_many(self, accumulator, values):
            raise RuntimeError("boom in shard worker")

        def result(self, accumulator):
            return 0.0

        def merge(self, accumulator, other):
            return accumulator

        def describe(self):
            return "boom"

    stream = keyed_stream(duration=5.0)
    operator = ShardedWindowOperator(
        2, ASSIGNER, BoomAggregate(), lambda: KSlackHandler(1.0)
    )
    with pytest.raises(RuntimeError, match="boom in shard worker"):
        run_pipeline(stream, operator)


@pytest.mark.parametrize("bad", [0, -1, MAX_SHARDS + 1, 2.0, True])
def test_invalid_shard_counts_are_rejected(bad):
    with pytest.raises(ConfigurationError):
        ShardedWindowOperator(
            bad, ASSIGNER, make_aggregate("mean"), lambda: KSlackHandler(1.0)
        )


def test_aggregate_without_numeric_discipline_is_rejected():
    class Undeclared:
        name = "mystery"
        error_model_kind = "additive_mass"

    with pytest.raises(ConfigurationError):
        ShardedWindowOperator(
            2, ASSIGNER, Undeclared(), lambda: KSlackHandler(1.0)
        )
