"""Tests for the baseline disorder handlers."""

import pytest

from repro.engine.handlers import KSlackHandler, MPKSlackHandler, NoBufferHandler
from repro.errors import ConfigurationError
from repro.streams.delay import ExponentialDelay, UniformDelay
from repro.streams.disorder import inject_disorder, measure_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import generate_stream


def drive(handler, elements):
    """Feed all elements; return (list of released, final frontier)."""
    released = []
    frontiers = []
    for element in elements:
        released.extend(handler.offer(element))
        frontiers.append(handler.frontier)
    released.extend(handler.flush())
    return released, frontiers


class TestNoBufferHandler:
    def test_releases_immediately(self):
        handler = NoBufferHandler()
        el = StreamElement(event_time=1.0, value=0, arrival_time=1.5)
        assert handler.offer(el) == [el]
        assert handler.buffered_count() == 0

    def test_frontier_is_max_event_time(self):
        handler = NoBufferHandler()
        handler.offer(StreamElement(event_time=5.0, value=0, arrival_time=5.0))
        handler.offer(StreamElement(event_time=3.0, value=0, arrival_time=6.0))
        assert handler.frontier == 5.0

    def test_zero_slack(self):
        assert NoBufferHandler().current_slack == 0.0

    def test_flush_empty(self):
        assert NoBufferHandler().flush() == []


class TestKSlackHandler:
    def test_negative_k_rejected(self):
        with pytest.raises(ConfigurationError):
            KSlackHandler(-1.0)

    def test_holds_back_by_k(self):
        handler = KSlackHandler(2.0)
        first = StreamElement(event_time=0.0, value=0, arrival_time=0.0)
        assert handler.offer(first) == []  # frontier = -2, nothing out
        second = StreamElement(event_time=2.0, value=0, arrival_time=2.0)
        released = handler.offer(second)
        assert released == [first]  # frontier reached 0

    def test_frontier_lags_clock_by_k(self):
        handler = KSlackHandler(2.0)
        handler.offer(StreamElement(event_time=10.0, value=0, arrival_time=10.0))
        assert handler.frontier == 8.0

    def test_frontier_monotone(self, rng):
        stream = inject_disorder(
            generate_stream(duration=20, rate=50, rng=rng), UniformDelay(0, 1), rng
        )
        handler = KSlackHandler(0.5)
        __, frontiers = drive(handler, stream)
        assert frontiers == sorted(frontiers)

    def test_releases_everything_exactly_once(self, rng):
        stream = inject_disorder(
            generate_stream(duration=20, rate=50, rng=rng), ExponentialDelay(0.5), rng
        )
        handler = KSlackHandler(1.0)
        released, __ = drive(handler, stream)
        assert sorted(released, key=lambda e: e.seq) == sorted(
            stream, key=lambda e: e.seq
        )

    def test_reorders_up_to_k(self, rng):
        stream = generate_stream(duration=30, rate=50, rng=rng)
        disordered = inject_disorder(stream, UniformDelay(0, 1.0), rng)
        stats = measure_disorder(disordered)
        # K at least the max displacement restores perfect order.
        handler = KSlackHandler(stats.max_displacement)
        released, __ = drive(handler, disordered)
        event_times = [e.event_time for e in released]
        assert event_times == sorted(event_times)

    def test_insufficient_k_leaves_some_disorder(self, rng):
        stream = generate_stream(duration=30, rate=50, rng=rng)
        disordered = inject_disorder(stream, UniformDelay(0, 2.0), rng)
        handler = KSlackHandler(0.01)
        released, __ = drive(handler, disordered)
        event_times = [e.event_time for e in released]
        assert event_times != sorted(event_times)

    def test_buffer_telemetry(self, rng):
        stream = inject_disorder(
            generate_stream(duration=10, rate=50, rng=rng), UniformDelay(0, 0.5), rng
        )
        handler = KSlackHandler(2.0)
        drive(handler, stream)
        assert handler.max_buffered_count() > 0

    def test_describe_mentions_k(self):
        assert "1.5" in KSlackHandler(1.5).describe()


class TestMPKSlackHandler:
    def test_k_grows_to_max_delay(self, rng):
        stream = inject_disorder(
            generate_stream(duration=30, rate=30, rng=rng), UniformDelay(0, 1.5), rng
        )
        stats = measure_disorder(stream)
        handler = MPKSlackHandler()
        drive(handler, stream)
        assert handler.k == pytest.approx(stats.max_delay)

    def test_safety_factor_pads_k(self, rng):
        stream = inject_disorder(
            generate_stream(duration=30, rate=30, rng=rng), UniformDelay(0, 1.5), rng
        )
        stats = measure_disorder(stream)
        handler = MPKSlackHandler(safety_factor=2.0)
        drive(handler, stream)
        assert handler.k == pytest.approx(2.0 * stats.max_delay)

    def test_k_never_shrinks(self, rng):
        stream = inject_disorder(
            generate_stream(duration=30, rate=30, rng=rng), ExponentialDelay(0.5), rng
        )
        handler = MPKSlackHandler()
        ks = []
        for element in stream:
            handler.offer(element)
            ks.append(handler.k)
        assert ks == sorted(ks)

    def test_frontier_monotone_while_k_grows(self, rng):
        stream = inject_disorder(
            generate_stream(duration=30, rate=30, rng=rng), ExponentialDelay(0.5), rng
        )
        handler = MPKSlackHandler()
        __, frontiers = drive(handler, stream)
        assert frontiers == sorted(frontiers)

    def test_releases_everything(self, rng):
        stream = inject_disorder(
            generate_stream(duration=20, rate=40, rng=rng), ExponentialDelay(0.5), rng
        )
        handler = MPKSlackHandler()
        released, __ = drive(handler, stream)
        assert len(released) == len(stream)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            MPKSlackHandler(initial_k=-1.0)
        with pytest.raises(ConfigurationError):
            MPKSlackHandler(safety_factor=0.5)

    def test_handles_elements_without_arrival(self):
        handler = MPKSlackHandler()
        handler.offer(StreamElement(event_time=1.0, value=0))
        assert handler.k == 0.0
