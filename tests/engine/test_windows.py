"""Tests for window assigners and the session merger."""

import math

import pytest

from repro.engine.windows import (
    SessionWindowMerger,
    SlidingWindowAssigner,
    TumblingWindowAssigner,
    Window,
    sliding,
    tumbling,
)
from repro.errors import ConfigurationError


class TestWindow:
    def test_size(self):
        assert Window(2.0, 5.0).size == 3.0

    def test_contains_half_open(self):
        window = Window(2.0, 5.0)
        assert window.contains(2.0)
        assert window.contains(4.999)
        assert not window.contains(5.0)
        assert not window.contains(1.999)

    def test_degenerate_rejected(self):
        with pytest.raises(ConfigurationError):
            Window(2.0, 2.0)
        with pytest.raises(ConfigurationError):
            Window(2.0, 1.0)

    def test_ordering(self):
        assert Window(0, 10) < Window(2, 12)

    def test_hashable(self):
        assert len({Window(0, 10), Window(0, 10), Window(2, 12)}) == 2


class TestSlidingWindowAssigner:
    def test_timestamp_in_every_assigned_window(self):
        assigner = SlidingWindowAssigner(size=10, slide=3)
        for ts in (0.0, 2.9, 3.0, 7.5, 29.0, 100.7):
            windows = assigner.assign(ts)
            assert windows, f"no windows for {ts}"
            for window in windows:
                assert window.contains(ts)

    def test_window_count_in_steady_state(self):
        assigner = SlidingWindowAssigner(size=10, slide=2)
        assert len(assigner.assign(50.0)) == 5

    def test_fewer_windows_near_origin(self):
        assigner = SlidingWindowAssigner(size=10, slide=2)
        assert len(assigner.assign(0.0)) == 1
        assert len(assigner.assign(3.0)) == 2

    def test_alignment_to_slide_multiples(self):
        assigner = SlidingWindowAssigner(size=10, slide=2)
        for window in assigner.assign(25.0):
            assert window.start % 2 == pytest.approx(0.0)

    def test_windows_sorted_by_start(self):
        assigner = SlidingWindowAssigner(size=10, slide=2)
        windows = assigner.assign(25.0)
        starts = [w.start for w in windows]
        assert starts == sorted(starts)

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowAssigner(10, 2).assign(-1.0)

    @pytest.mark.parametrize("size,slide", [(0, 1), (10, 0), (5, 6), (-1, 1)])
    def test_bad_parameters_rejected(self, size, slide):
        with pytest.raises(ConfigurationError):
            SlidingWindowAssigner(size, slide)

    def test_windows_ending_in_matches_assign(self):
        assigner = SlidingWindowAssigner(size=10, slide=3)
        # Collect windows via assignment of a dense grid of timestamps.
        seen = set()
        for i in range(400):
            ts = i * 0.25
            for window in assigner.assign(ts):
                if window.end <= 60:
                    seen.add(window)
        expected = {w for w in assigner.windows_ending_in(0.0, 60.0)}
        # assign only discovers windows containing some grid point, which is
        # all of them for this dense grid.
        assert expected == {w for w in seen if w.end > 0}

    def test_windows_ending_in_bounds(self):
        assigner = SlidingWindowAssigner(size=10, slide=2)
        for window in assigner.windows_ending_in(20.0, 40.0):
            assert 20.0 < window.end <= 40.0

    def test_describe(self):
        assert "sliding" in SlidingWindowAssigner(10, 2).describe()


class TestTumblingWindowAssigner:
    def test_single_window_per_timestamp(self):
        assigner = TumblingWindowAssigner(size=5)
        assert len(assigner.assign(12.0)) == 1
        assert assigner.assign(12.0)[0] == Window(10, 15)

    def test_partition_property(self):
        assigner = TumblingWindowAssigner(size=5)
        boundaries = assigner.assign(5.0)
        assert boundaries == [Window(5, 10)]  # end-exclusive

    def test_convenience_constructors(self):
        assert isinstance(sliding(10, 2), SlidingWindowAssigner)
        assert isinstance(tumbling(5), TumblingWindowAssigner)
        assert "tumbling" in tumbling(5).describe()


class TestSessionWindowMerger:
    def test_single_event(self):
        merger = SessionWindowMerger(gap=2.0)
        assert merger.add("k", 5.0) == (5.0, 5.0)

    def test_events_within_gap_merge(self):
        merger = SessionWindowMerger(gap=2.0)
        merger.add("k", 5.0)
        assert merger.add("k", 6.5) == (5.0, 6.5)
        assert merger.open_count() == 1

    def test_events_beyond_gap_separate(self):
        merger = SessionWindowMerger(gap=2.0)
        merger.add("k", 5.0)
        merger.add("k", 10.0)
        assert merger.open_count() == 2

    def test_bridging_event_merges_two_sessions(self):
        merger = SessionWindowMerger(gap=3.0)
        merger.add("k", 0.0)
        merger.add("k", 5.0)
        assert merger.open_count() == 2
        assert merger.add("k", 2.5) == (0.0, 5.0)
        assert merger.open_count() == 1

    def test_keys_isolated(self):
        merger = SessionWindowMerger(gap=2.0)
        merger.add("a", 0.0)
        merger.add("b", 1.0)
        assert merger.open_count() == 2
        assert set(merger.keys()) == {"a", "b"}

    def test_closable_respects_gap(self):
        merger = SessionWindowMerger(gap=2.0)
        merger.add("k", 0.0)
        assert merger.closable("k", 1.9) == []
        assert merger.closable("k", 2.0) == [(0.0, 0.0)]
        # Closed sessions are removed.
        assert merger.open_count() == 0

    def test_bad_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionWindowMerger(gap=0.0)
