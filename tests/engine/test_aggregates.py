"""Tests for the aggregate function library."""

import math

import numpy as np
import pytest

from repro.engine.aggregates import (
    CountAggregate,
    DistinctCountAggregate,
    MaxAggregate,
    MeanAggregate,
    MedianAggregate,
    MinAggregate,
    QuantileAggregate,
    RangeAggregate,
    StdDevAggregate,
    SumAggregate,
    VarianceAggregate,
    make_aggregate,
)
from repro.errors import ConfigurationError

DATA = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]

CASES = [
    (CountAggregate(), 8.0),
    (SumAggregate(), 31.0),
    (MeanAggregate(), 31.0 / 8.0),
    (MinAggregate(), 1.0),
    (MaxAggregate(), 9.0),
    (StdDevAggregate(), float(np.std(DATA))),
    (MedianAggregate(), float(np.median(DATA))),
    (QuantileAggregate(0.25), float(np.quantile(DATA, 0.25))),
    (DistinctCountAggregate(), 7.0),
    (RangeAggregate(), 8.0),
]


def fold(aggregate, values):
    acc = aggregate.create()
    for value in values:
        aggregate.add(acc, value)
    return acc


@pytest.mark.parametrize("aggregate,expected", CASES, ids=lambda c: getattr(c, "name", str(c)))
def test_known_values(aggregate, expected):
    acc = fold(aggregate, DATA)
    assert aggregate.result(acc) == pytest.approx(expected)


@pytest.mark.parametrize("aggregate,expected", CASES, ids=lambda c: getattr(c, "name", str(c)))
def test_merge_equals_batch(aggregate, expected):
    left = fold(aggregate, DATA[:3])
    right = fold(aggregate, DATA[3:])
    merged = aggregate.merge(left, right)
    assert aggregate.result(merged) == pytest.approx(expected)


@pytest.mark.parametrize(
    "aggregate", [c[0] for c in CASES], ids=lambda a: a.name
)
def test_empty_window_result(aggregate):
    acc = aggregate.create()
    result = aggregate.result(acc)
    if aggregate.name == "count" or aggregate.name == "sum":
        assert result == 0.0
    elif aggregate.name == "distinct":
        assert result == 0.0
    else:
        assert math.isnan(result)


@pytest.mark.parametrize(
    "aggregate", [c[0] for c in CASES], ids=lambda a: a.name
)
def test_late_add_after_snapshot(aggregate):
    """The feedback loop adds values to an accumulator after reading it."""
    acc = fold(aggregate, DATA[:5])
    __ = aggregate.result(acc)
    aggregate.add(acc, DATA[5])
    aggregate.add(acc, DATA[6])
    aggregate.add(acc, DATA[7])
    full = fold(aggregate, DATA)
    assert aggregate.result(acc) == pytest.approx(aggregate.result(full))


class TestStdDev:
    def test_single_value_is_zero(self):
        aggregate = StdDevAggregate()
        acc = fold(aggregate, [5.0])
        assert aggregate.result(acc) == 0.0

    def test_matches_numpy_on_random(self, rng):
        values = list(rng.normal(10, 3, size=500))
        aggregate = StdDevAggregate()
        acc = fold(aggregate, values)
        assert aggregate.result(acc) == pytest.approx(float(np.std(values)))

    def test_merge_with_empty(self):
        aggregate = StdDevAggregate()
        acc = fold(aggregate, DATA)
        merged = aggregate.merge(acc, aggregate.create())
        assert aggregate.result(merged) == pytest.approx(float(np.std(DATA)))


class TestVariance:
    def test_matches_numpy_population_variance(self, rng):
        values = list(rng.normal(10, 3, size=500))
        aggregate = VarianceAggregate()
        acc = fold(aggregate, values)
        assert aggregate.result(acc) == pytest.approx(float(np.var(values)))

    def test_is_square_of_stddev(self):
        variance = fold(VarianceAggregate(), DATA)
        stddev = fold(StdDevAggregate(), DATA)
        assert VarianceAggregate().result(variance) == pytest.approx(
            StdDevAggregate().result(stddev) ** 2
        )

    def test_registry_aliases(self):
        assert isinstance(make_aggregate("variance"), VarianceAggregate)
        assert isinstance(make_aggregate("var"), VarianceAggregate)


class TestScalarBatchedBitIdentity:
    """Regression: Sum/Mean batched folds are *bit-identical* to scalar.

    The batched paths used to switch to a numpy reduction at 32 elements,
    which reassociates the fold and produced different low bits than
    repeated ``add`` — the equivalence suites then needed tolerances for
    what should be the same fold.  Both now run the identical Neumaier
    sequence (lint rule R20 pins this statically), so the comparison here
    is ``==`` on the full accumulator state, deliberately not approx.
    """

    # Sizes straddling the old numpy-threshold boundary.
    @pytest.mark.parametrize("size", [1, 5, 31, 32, 33, 100, 500])
    @pytest.mark.parametrize("aggregate_cls", [SumAggregate, MeanAggregate])
    def test_add_many_equals_repeated_add(self, rng, aggregate_cls, size):
        # Adversarial magnitudes: mix huge and tiny so any reassociation
        # actually changes the bits.
        values = list(rng.normal(0, 1, size=size))
        values[:: max(size // 4, 1)] = [1e15] * len(values[:: max(size // 4, 1)])
        aggregate = aggregate_cls()
        scalar = fold(aggregate, values)
        batched = aggregate.create()
        aggregate.add_many(batched, values)
        assert scalar == batched
        assert aggregate.result(scalar) == aggregate.result(batched)

    def test_cancellation_survives_the_batched_path(self):
        aggregate = SumAggregate()
        acc = aggregate.create()
        aggregate.add_many(acc, [1e16, 1.0, -1e16] * 20)
        assert aggregate.result(acc) == 20.0


class TestQuantile:
    def test_interpolation_matches_numpy(self, rng):
        values = list(rng.random(101))
        for q in (0.0, 0.1, 0.5, 0.9, 1.0):
            aggregate = QuantileAggregate(q)
            acc = fold(aggregate, values)
            assert aggregate.result(acc) == pytest.approx(float(np.quantile(values, q)))

    def test_bad_q_rejected(self):
        with pytest.raises(ConfigurationError):
            QuantileAggregate(1.5)

    def test_name(self):
        assert QuantileAggregate(0.95).name == "p95"
        assert MedianAggregate().name == "median"


class TestMakeAggregate:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("count", CountAggregate),
            ("sum", SumAggregate),
            ("mean", MeanAggregate),
            ("avg", MeanAggregate),
            ("min", MinAggregate),
            ("max", MaxAggregate),
            ("stddev", StdDevAggregate),
            ("median", MedianAggregate),
            ("distinct", DistinctCountAggregate),
            ("range", RangeAggregate),
        ],
    )
    def test_registry(self, name, cls):
        assert isinstance(make_aggregate(name), cls)

    def test_quantile_names(self):
        aggregate = make_aggregate("p95")
        assert isinstance(aggregate, QuantileAggregate)
        assert aggregate.q == pytest.approx(0.95)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_aggregate("bogus")


class TestErrorModelKinds:
    @pytest.mark.parametrize(
        "aggregate,kind",
        [
            (CountAggregate(), "additive_mass"),
            (SumAggregate(), "additive_mass"),
            (MeanAggregate(), "mean"),
            (MinAggregate(), "extremum"),
            (MaxAggregate(), "extremum"),
            (StdDevAggregate(), "mean"),
            (MedianAggregate(), "rank"),
            (DistinctCountAggregate(), "distinct"),
            (RangeAggregate(), "extremum"),
        ],
    )
    def test_declared_kind(self, aggregate, kind):
        assert aggregate.error_model_kind == kind
