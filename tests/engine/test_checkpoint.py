"""Tests for checkpoint/restore: resume equivalence."""

import pytest

from repro.core.aqk import AQKSlackHandler
from repro.core.spec import QualityTarget
from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import CountAggregate, MeanAggregate
from repro.engine.checkpoint import load_checkpoint, save_checkpoint
from repro.engine.handlers import KSlackHandler
from repro.engine.windows import SlidingWindowAssigner
from repro.errors import ConfigurationError
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.generators import generate_stream


def make_stream(rng, duration=60):
    return inject_disorder(
        generate_stream(duration=duration, rate=40, rng=rng),
        ExponentialDelay(0.5),
        rng,
    )


def drive(operator, elements, finish=True):
    results = []
    for element in elements:
        results.extend(operator.process(element))
    if finish:
        results.extend(operator.finish())
    return results


class TestResumeEquivalence:
    def _assert_resume_equivalent(self, make_operator, stream, tmp_path):
        # Reference: one uninterrupted run.
        reference = drive(make_operator(), list(stream))

        # Checkpointed: run half, save, load, run the rest.
        half = len(stream) // 2
        first_half = make_operator()
        results = drive(first_half, stream[:half], finish=False)
        path = tmp_path / "op.ckpt"
        save_checkpoint(first_half, path)
        resumed = load_checkpoint(path)
        results += drive(resumed, stream[half:])

        assert len(results) == len(reference)
        for a, b in zip(results, reference):
            assert a.key == b.key
            assert a.window == b.window
            assert a.value == pytest.approx(b.value, nan_ok=True)
            assert a.count == b.count
            assert a.latency == pytest.approx(b.latency)

    def test_kslack_operator(self, rng, tmp_path):
        stream = make_stream(rng)

        def make_operator():
            return WindowAggregateOperator(
                SlidingWindowAssigner(5, 1), MeanAggregate(), KSlackHandler(1.0)
            )

        self._assert_resume_equivalent(make_operator, stream, tmp_path)

    def test_adaptive_operator(self, rng, tmp_path):
        """Resume restores the controller gain and delay sample too."""
        stream = make_stream(rng)

        def make_operator():
            return WindowAggregateOperator(
                SlidingWindowAssigner(5, 1),
                CountAggregate(),
                AQKSlackHandler(
                    target=QualityTarget(0.05),
                    aggregate=CountAggregate(),
                    window_size=5.0,
                ),
            )

        self._assert_resume_equivalent(make_operator, stream, tmp_path)

    def test_adaptive_state_survives(self, rng, tmp_path):
        stream = make_stream(rng)
        operator = WindowAggregateOperator(
            SlidingWindowAssigner(5, 1),
            CountAggregate(),
            AQKSlackHandler(
                target=QualityTarget(0.05),
                aggregate=CountAggregate(),
                window_size=5.0,
            ),
        )
        drive(operator, stream, finish=False)
        path = tmp_path / "op.ckpt"
        save_checkpoint(operator, path)
        resumed = load_checkpoint(path)
        assert resumed.handler.k == operator.handler.k
        assert len(resumed.handler.adaptations) == len(operator.handler.adaptations)
        assert resumed.stats.elements_in == operator.stats.elements_in


class TestCheckpointFormat:
    def test_bytes_written_reported(self, rng, tmp_path):
        operator = WindowAggregateOperator(
            SlidingWindowAssigner(5, 1), MeanAggregate(), KSlackHandler(1.0)
        )
        path = tmp_path / "op.ckpt"
        n = save_checkpoint(operator, path)
        assert n == path.stat().st_size

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "bogus.ckpt"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(ConfigurationError):
            load_checkpoint(path)

    def test_creates_parent_directories(self, rng, tmp_path):
        operator = WindowAggregateOperator(
            SlidingWindowAssigner(5, 1), MeanAggregate(), KSlackHandler(1.0)
        )
        path = tmp_path / "deep" / "nested" / "op.ckpt"
        save_checkpoint(operator, path)
        assert path.exists()
