"""Tests for partial-aggregate tree execution and the shared slice store.

The contract is semantic equivalence with the naive and sliced operators;
most tests run two operators over the same stream and compare results
exactly.  Tree-specific behavior (O(log) patches, node caching, GC bounds,
trace events) is covered separately.
"""

import math

import numpy as np
import pytest

from repro.core.aqk import AQKSlackHandler
from repro.core.spec import QualityTarget
from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import (
    CountAggregate,
    DistinctCountAggregate,
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
    SumAggregate,
    make_aggregate,
)
from repro.engine.handlers import KSlackHandler, NoBufferHandler
from repro.engine.partial_tree import (
    EXECUTION_MODES,
    SharedSliceStore,
    TreeWindowAggregateOperator,
    make_window_operator,
    run_shared_slices,
)
from repro.engine.pipeline import run_pipeline
from repro.engine.sliced_op import SlicedWindowAggregateOperator
from repro.engine.windows import SlidingWindowAssigner, TumblingWindowAssigner
from repro.errors import ConfigurationError
from repro.obs.trace import TraceRecorder
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import generate_stream


def make_stream(rng, duration=60, rate=50, mean_delay=0.5, keys=None):
    return inject_disorder(
        generate_stream(duration=duration, rate=rate, rng=rng, keys=keys),
        ExponentialDelay(mean_delay),
        rng,
    )


def result_map(results):
    return {
        (r.key, r.window): (r.value, r.count, r.latency, r.flushed) for r in results
    }


def assert_equivalent(stream, assigner, aggregate_factory, handler_factory):
    naive = WindowAggregateOperator(assigner, aggregate_factory(), handler_factory())
    tree = TreeWindowAggregateOperator(assigner, aggregate_factory(), handler_factory())
    naive_map = result_map(run_pipeline(stream, naive).results)
    tree_map = result_map(run_pipeline(stream, tree).results)
    assert set(naive_map) == set(tree_map)
    for slot, (value, count, latency, flushed) in naive_map.items():
        t_value, t_count, t_latency, t_flushed = tree_map[slot]
        assert t_count == count
        assert t_latency == latency
        assert t_flushed == flushed
        assert t_value == value or abs(t_value - value) <= 1e-9 * max(1.0, abs(value))


# --------------------------------------------------------------------- #
# construction


def test_rejects_non_sliding_assigner():
    from repro.engine.windows import SessionWindowMerger

    with pytest.raises(ConfigurationError):
        TreeWindowAggregateOperator(
            SessionWindowMerger(gap=1.0), SumAggregate(), KSlackHandler(1.0)
        )


def test_rejects_non_divisible_slide():
    with pytest.raises(ConfigurationError):
        TreeWindowAggregateOperator(
            SlidingWindowAssigner(10, 3), SumAggregate(), KSlackHandler(1.0)
        )


def test_rejects_negative_feedback_horizon():
    with pytest.raises(ConfigurationError):
        TreeWindowAggregateOperator(
            SlidingWindowAssigner(10, 2),
            SumAggregate(),
            KSlackHandler(1.0),
            feedback_horizon=-1.0,
        )


def test_make_window_operator_modes():
    def build(mode):
        return make_window_operator(
            mode, SlidingWindowAssigner(10, 2), SumAggregate(), KSlackHandler(1.0)
        )

    assert isinstance(build("naive"), WindowAggregateOperator)
    assert isinstance(build("sliced"), SlicedWindowAggregateOperator)
    assert isinstance(build("tree"), TreeWindowAggregateOperator)
    assert set(EXECUTION_MODES) == {"naive", "sliced", "tree"}
    with pytest.raises(ConfigurationError):
        build("bogus")


# --------------------------------------------------------------------- #
# equivalence with the naive operator


@pytest.mark.parametrize("size,slide", [(10, 2), (8, 1), (5, 5), (4, 0.5)])
def test_tree_equals_naive_sliding(size, slide):
    rng = np.random.default_rng(11)
    stream = make_stream(rng)
    assert_equivalent(
        stream,
        SlidingWindowAssigner(size, slide),
        SumAggregate,
        lambda: KSlackHandler(1.0),
    )


@pytest.mark.parametrize(
    "aggregate_cls",
    [CountAggregate, SumAggregate, MeanAggregate, MinAggregate, MaxAggregate],
)
def test_tree_equals_naive_across_aggregates(aggregate_cls):
    rng = np.random.default_rng(12)
    stream = make_stream(rng)
    assert_equivalent(
        stream, SlidingWindowAssigner(10, 2), aggregate_cls, lambda: KSlackHandler(1.5)
    )


def test_tree_equals_naive_tumbling():
    rng = np.random.default_rng(13)
    stream = make_stream(rng)
    assert_equivalent(
        stream, TumblingWindowAssigner(5), SumAggregate, lambda: KSlackHandler(1.0)
    )


def test_tree_equals_naive_keyed():
    rng = np.random.default_rng(14)
    stream = make_stream(rng, keys=["a", "b", "c"])
    assert_equivalent(
        stream, SlidingWindowAssigner(10, 2), SumAggregate, lambda: KSlackHandler(1.0)
    )


def test_tree_equals_naive_no_buffering():
    rng = np.random.default_rng(15)
    stream = make_stream(rng, mean_delay=1.5)
    assert_equivalent(
        stream, SlidingWindowAssigner(10, 2), SumAggregate, NoBufferHandler
    )


def test_tree_equals_naive_with_aqk():
    rng = np.random.default_rng(16)
    stream = make_stream(rng, mean_delay=1.0)
    assert_equivalent(
        stream,
        SlidingWindowAssigner(10, 2),
        CountAggregate,
        lambda: AQKSlackHandler(
            target=QualityTarget(0.05),
            aggregate=make_aggregate("count"),
            window_size=10.0,
        ),
    )


def test_tree_matches_sliced_stats_and_errors():
    rng = np.random.default_rng(17)
    stream = make_stream(rng, mean_delay=1.5)
    sliced = SlicedWindowAggregateOperator(
        SlidingWindowAssigner(10, 2), CountAggregate(), KSlackHandler(0.5)
    )
    tree = TreeWindowAggregateOperator(
        SlidingWindowAssigner(10, 2), CountAggregate(), KSlackHandler(0.5)
    )
    run_pipeline(stream, sliced)
    run_pipeline(stream, tree)
    assert tree.stats.elements_in == sliced.stats.elements_in
    assert tree.stats.results_out == sliced.stats.results_out
    assert tree.stats.late_dropped == sliced.stats.late_dropped
    assert len(tree.stats.observed_errors) == len(sliced.stats.observed_errors)
    for a, b in zip(
        sorted(sliced.stats.observed_errors), sorted(tree.stats.observed_errors)
    ):
        assert (math.isnan(a) and math.isnan(b)) or a == b


# --------------------------------------------------------------------- #
# batched execution parity


@pytest.mark.parametrize("batch_size", [1, 7, 64, 512])
def test_batched_equals_scalar(batch_size):
    rng = np.random.default_rng(21)
    stream = make_stream(rng)

    def build():
        return TreeWindowAggregateOperator(
            SlidingWindowAssigner(10, 2), SumAggregate(), KSlackHandler(1.0)
        )

    scalar_op, batched_op = build(), build()
    scalar = run_pipeline(stream, scalar_op).results
    batched = run_pipeline(stream, batched_op, batch_size=batch_size).results
    assert [(r.key, r.window, r.count, r.flushed) for r in scalar] == [
        (r.key, r.window, r.count, r.flushed) for r in batched
    ]
    for a, b in zip(scalar, batched):
        assert a.value == b.value or abs(a.value - b.value) <= 1e-9 * max(
            1.0, abs(a.value)
        )
    assert batched_op.stats.late_dropped == scalar_op.stats.late_dropped
    assert len(batched_op.stats.observed_errors) == len(scalar_op.stats.observed_errors)


# --------------------------------------------------------------------- #
# tree internals: patches, caching, GC


def test_in_order_stream_never_patches():
    elements = [
        StreamElement(event_time=i * 0.1, value=1.0, arrival_time=i * 0.1, seq=i)
        for i in range(500)
    ]
    operator = TreeWindowAggregateOperator(
        SlidingWindowAssigner(4, 0.5), CountAggregate(), NoBufferHandler()
    )
    run_pipeline(elements, operator)
    assert operator.patch_count == 0


def test_late_elements_patch_logarithmically():
    rng = np.random.default_rng(31)
    stream = make_stream(rng, mean_delay=2.0)
    span = int(round(8 / 0.5))
    operator = TreeWindowAggregateOperator(
        SlidingWindowAssigner(8, 0.5), CountAggregate(), KSlackHandler(0.25)
    )
    run_pipeline(stream, operator)
    assert operator.patch_count > 0
    # The patch path is bounded by the tree height over the window span.
    assert operator.max_patch_depth <= math.ceil(math.log2(span)) + 1


def test_interior_nodes_are_cached_and_reused():
    elements = [
        StreamElement(event_time=i * 0.01, value=1.0, arrival_time=i * 0.01, seq=i)
        for i in range(2000)
    ]
    operator = TreeWindowAggregateOperator(
        SlidingWindowAssigner(6.4, 0.1),
        CountAggregate(),
        NoBufferHandler(),
        track_feedback=False,
    )
    run_pipeline(elements, operator)
    windows = operator.stats.results_out
    span = 64
    # Without caching every window would recompute ~span interior nodes;
    # with caching the whole run stays well under one span's worth per
    # window.
    assert operator.recompute_count < windows * math.ceil(math.log2(span)) * 2


def test_gc_bounds_retained_state():
    elements = [
        StreamElement(event_time=i * 0.01, value=1.0, arrival_time=i * 0.01, seq=i)
        for i in range(5000)
    ]
    operator = TreeWindowAggregateOperator(
        SlidingWindowAssigner(2, 0.25),
        CountAggregate(),
        NoBufferHandler(),
        feedback_horizon=4.0,
    )
    run_pipeline(elements, operator)
    # 50s of stream, 0.25s slices, horizon 4s + window 2s: far fewer than
    # the ~200 slices the full stream would retain without GC.
    assert operator.slice_count() < 60
    assert operator.node_count() < 120


def test_tree_trace_events():
    rng = np.random.default_rng(32)
    stream = make_stream(rng, mean_delay=1.5)
    operator = TreeWindowAggregateOperator(
        SlidingWindowAssigner(8, 0.5), CountAggregate(), KSlackHandler(0.25)
    )
    recorder = TraceRecorder(detail=True)
    run_pipeline(stream, operator, trace=recorder)
    patches = list(recorder.of_kind("tree.patch"))
    assembles = list(recorder.of_kind("tree.assemble"))
    assert len(patches) == operator.patch_count
    assert assembles, "detail mode records per-window assembly"
    for event in patches:
        assert event.fields["depth"] >= 1
    for event in assembles:
        assert event.fields["nodes"] >= 0
    # Traced run emits identical results to an untraced one.
    untraced = TreeWindowAggregateOperator(
        SlidingWindowAssigner(8, 0.5), CountAggregate(), KSlackHandler(0.25)
    )
    assert result_map(run_pipeline(stream, untraced).results) == result_map(
        run_pipeline(stream, operator.__class__(
            SlidingWindowAssigner(8, 0.5), CountAggregate(), KSlackHandler(0.25)
        )).results
    )


# --------------------------------------------------------------------- #
# shared slice store


def test_shared_store_registration_errors():
    store = SharedSliceStore(2.0, CountAggregate())
    with pytest.raises(ConfigurationError):
        store.register("q", 7.0, slack=1.0)  # slide does not divide size
    with pytest.raises(ConfigurationError):
        store.register("q", 10.0)  # neither slack nor advisor
    with pytest.raises(ConfigurationError):
        store.register("q", 10.0, slack=1.0, advisor=object())  # both
    with pytest.raises(ConfigurationError):
        store.register("q", 10.0, advisor=object())  # no observe_only
    store.register("q", 10.0, slack=1.0)
    with pytest.raises(ConfigurationError):
        store.register("q", 10.0, slack=1.0)  # duplicate id
    with pytest.raises(ConfigurationError):
        SharedSliceStore(0.0, CountAggregate())


def test_shared_store_requires_registration_before_offer():
    store = SharedSliceStore(2.0, CountAggregate())
    element = StreamElement(event_time=0.0, value=1.0, arrival_time=0.0, seq=0)
    with pytest.raises(ConfigurationError):
        store.offer(element)
    store.register("q", 10.0, slack=1.0)
    store.offer(element)
    with pytest.raises(ConfigurationError):
        store.register("late", 10.0, slack=1.0)


def test_shared_store_matches_private_pipelines_fixed_slack():
    rng = np.random.default_rng(41)
    stream = make_stream(rng, mean_delay=1.0)
    store = SharedSliceStore(2.0, CountAggregate())
    configs = [("q8", 8.0, 2.0), ("q16", 16.0, 0.5), ("q10", 10.0, 1.0)]
    for qid, size, slack in configs:
        store.register(qid, size, slack=slack)
    shared = run_shared_slices(stream, store)
    for qid, size, slack in configs:
        solo = TreeWindowAggregateOperator(
            SlidingWindowAssigner(size, 2.0), CountAggregate(), KSlackHandler(slack)
        )
        solo_results = run_pipeline(stream, solo).results
        assert result_map(shared[qid]) == result_map(solo_results)
        assert store.stats_for(qid).late_dropped == solo.stats.late_dropped


def test_shared_store_matches_private_pipelines_aqk():
    rng = np.random.default_rng(42)
    stream = make_stream(rng, mean_delay=1.0)
    thetas = [0.02, 0.05, 0.2]
    store = SharedSliceStore(2.0, CountAggregate())
    for theta in thetas:
        advisor = AQKSlackHandler(
            target=QualityTarget(theta),
            aggregate=make_aggregate("count"),
            window_size=10.0,
        )
        store.register(f"q{theta}", 10.0, advisor=advisor)
    shared = run_shared_slices(stream, store)
    for theta in thetas:
        handler = AQKSlackHandler(
            target=QualityTarget(theta),
            aggregate=make_aggregate("count"),
            window_size=10.0,
        )
        solo = TreeWindowAggregateOperator(
            SlidingWindowAssigner(10.0, 2.0), CountAggregate(), handler
        )
        solo_results = run_pipeline(stream, solo).results
        assert result_map(shared[f"q{theta}"]) == result_map(solo_results)


def test_shared_store_single_tree_memory():
    rng = np.random.default_rng(43)
    stream = make_stream(rng)
    store = SharedSliceStore(2.0, CountAggregate(), track_feedback=False)
    for i, size in enumerate([8.0, 10.0, 16.0, 20.0]):
        store.register(f"q{i}", size, slack=1.0)
    run_shared_slices(stream, store)
    # One shared tree: retained slices scale with the widest window, not
    # with the number of queries.
    assert store.slice_count() <= 16


# --------------------------------------------------------------------- #
# builder and CLI wiring


def test_query_builder_mode_tree():
    from repro.queries.language import ContinuousQuery

    rng = np.random.default_rng(51)
    stream = make_stream(rng)

    def build(mode):
        return (
            ContinuousQuery()
            .from_elements(stream)
            .window(SlidingWindowAssigner(10, 2))
            .aggregate("count")
            .with_slack(1.0)
            .mode(mode)
            .run()
        )

    naive = build("naive")
    tree = build("tree")
    assert isinstance(tree.operator, TreeWindowAggregateOperator)
    assert result_map(naive.results) == result_map(tree.results)
    from repro.errors import QueryError

    with pytest.raises(QueryError):
        ContinuousQuery().mode("bogus")


def test_query_builder_sliced_alias():
    from repro.queries.language import ContinuousQuery

    query = ContinuousQuery().sliced()
    assert query._mode == "sliced"
    assert ContinuousQuery().sliced(False)._mode == "naive"


def test_distinct_count_bit_identical_under_disorder():
    rng = np.random.default_rng(52)
    base = generate_stream(duration=60, rate=50, rng=rng)
    spiky = [
        StreamElement(
            event_time=el.event_time,
            value=float(int(el.value * 10)),
            key=el.key,
            seq=el.seq,
        )
        for el in base
    ]
    stream = inject_disorder(spiky, ExponentialDelay(2.0), rng)
    naive = WindowAggregateOperator(
        SlidingWindowAssigner(10, 2), DistinctCountAggregate(), KSlackHandler(0.5)
    )
    tree = TreeWindowAggregateOperator(
        SlidingWindowAssigner(10, 2), DistinctCountAggregate(), KSlackHandler(0.5)
    )
    naive_map = result_map(run_pipeline(stream, naive).results)
    tree_map = result_map(run_pipeline(stream, tree).results)
    assert naive_map == tree_map
