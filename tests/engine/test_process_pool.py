"""Process-pool shard execution: codec, parity, faults, telemetry.

Module-level fault classes are required here: spawn-started workers
unpickle everything crossing the process boundary by module path, so a
poison aggregate defined inside a test function could never reach the
worker.  The shared module-scoped executor keeps the spawn cost (the
expensive part of every test) paid once.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.engine.aggregates import CountAggregate, make_aggregate
from repro.engine.handlers import KSlackHandler
from repro.engine.parallel import (
    ShardExecutor,
    ShardedWindowOperator,
    ThreadShardExecutor,
)
from repro.engine.pipeline import run_pipeline
from repro.engine.process_pool import (
    CODEC_STATS,
    DEFAULT_CHUNK_SIZE,
    ProcessShardExecutor,
    decode_chunk,
    encode_chunk,
)
from repro.engine.windows import SlidingWindowAssigner
from repro.errors import ConfigurationError, QueryError, ShardWorkerError
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import generate_stream

ASSIGNER = SlidingWindowAssigner(size=4.0, slide=1.0)


def keyed_stream(keys=("a", "b", "c", "d"), duration=15.0, rate=30.0, seed=7):
    rng = np.random.default_rng(seed)
    return inject_disorder(
        generate_stream(duration=duration, rate=rate, rng=rng, keys=keys),
        ExponentialDelay(0.4),
        rng,
    )


def no_late_k(stream):
    """A K large enough that no element can ever be late."""
    return max(e.arrival_time - e.event_time for e in stream) + 1e-6


def sharded_operator(n, executor, aggregate="mean", k=1.0, mode="naive", **kwargs):
    return ShardedWindowOperator(
        n,
        ASSIGNER,
        make_aggregate(aggregate),
        lambda: KSlackHandler(k),
        mode=mode,
        executor=executor,
        **kwargs,
    )


def canonical(results):
    return sorted(
        (
            r.key,
            r.window,
            float(r.value),
            r.count,
            r.emit_time,
            r.latency,
            r.revision,
            r.flushed,
        )
        for r in results
    )


@pytest.fixture(scope="module")
def pool():
    """One warm two-worker pool shared by every test in this module."""
    executor = ProcessShardExecutor(max_workers=2, chunk_size=64)
    yield executor
    executor.close()


# --------------------------------------------------------------------- #
# chunk codec


def test_codec_round_trips_float_values_and_keys():
    elements = keyed_stream(duration=3.0)
    assert decode_chunk(encode_chunk(elements)) == elements


def test_codec_round_trips_none_keys_and_none_arrivals():
    elements = [
        StreamElement(event_time=0.5, value=1.0, seq=0),
        StreamElement(event_time=1.0, value=2.5, key=None, arrival_time=1.5, seq=1),
    ]
    assert decode_chunk(encode_chunk(elements)) == elements


def test_codec_round_trips_non_float_values():
    elements = [
        StreamElement(event_time=float(i), value=value, key="k", arrival_time=float(i), seq=i)
        for i, value in enumerate([1, "text", (2, 3), 4.5])
    ]
    assert decode_chunk(encode_chunk(elements)) == elements


def test_codec_never_pickles_per_element():
    CODEC_STATS.reset()
    elements = keyed_stream(duration=10.0)
    assert len(elements) > 100
    encode_chunk(elements)
    assert CODEC_STATS.chunks_encoded == 1
    assert CODEC_STATS.elements_encoded == len(elements)
    # float values ride the array fast path; only the key table pickles.
    assert CODEC_STATS.pickle_calls <= 2


def test_dispatch_path_is_chunk_encoded_not_per_element(pool):
    CODEC_STATS.reset()
    stream = keyed_stream()
    operator = sharded_operator(4, pool, k=no_late_k(stream))
    run_pipeline(stream, operator)
    assert CODEC_STATS.elements_encoded == len(stream)
    # The acceptance probe: pickle calls scale with chunks, not elements.
    assert CODEC_STATS.chunks_encoded < len(stream) / 8
    assert CODEC_STATS.pickle_calls <= 2 * CODEC_STATS.chunks_encoded


# --------------------------------------------------------------------- #
# executor parity (the shard contract across executors)


@pytest.mark.parametrize("mode", ["naive", "sliced", "tree"])
def test_process_matches_threads_bit_identical(pool, mode):
    stream = keyed_stream()
    k = no_late_k(stream)
    thread_out = run_pipeline(
        stream, sharded_operator(4, ThreadShardExecutor(), k=k, mode=mode)
    )
    process_out = run_pipeline(stream, sharded_operator(4, pool, k=k, mode=mode))
    assert canonical(process_out.results) == canonical(thread_out.results)


@pytest.mark.parametrize("aggregate", ["count", "min", "max", "distinct"])
def test_process_matches_serial_for_exact_aggregates(pool, aggregate):
    stream = keyed_stream()
    k = no_late_k(stream)
    serial_out = run_pipeline(
        stream, sharded_operator(3, ShardExecutor(), aggregate=aggregate, k=k)
    )
    process_out = run_pipeline(
        stream, sharded_operator(3, pool, aggregate=aggregate, k=k)
    )
    assert canonical(process_out.results) == canonical(serial_out.results)


def test_warm_pool_is_reused_across_runs(pool):
    stream = keyed_stream(duration=5.0)
    k = no_late_k(stream)
    first = run_pipeline(stream, sharded_operator(2, pool, k=k))
    pids = [worker.pid for worker in pool._workers]
    second = run_pipeline(stream, sharded_operator(2, pool, k=k))
    assert [worker.pid for worker in pool._workers] == pids
    assert canonical(first.results) == canonical(second.results)


def test_empty_stream_finishes_empty(pool):
    operator = sharded_operator(2, pool)
    assert operator.finish() == []


def test_process_shards_run_sanitizer_clean(pool):
    stream = keyed_stream(duration=8.0)
    operator = sharded_operator(2, pool, k=no_late_k(stream), mode="tree")
    output = run_pipeline(stream, operator, sanitize="stream")
    assert output.results


# --------------------------------------------------------------------- #
# observability: dispatch/collect traces, absorbed events, metric merge


def test_trace_records_chunked_dispatch_and_collect(pool):
    stream = keyed_stream()
    recorder = TraceRecorder()
    operator = sharded_operator(4, pool, k=no_late_k(stream))
    run_pipeline(stream, operator, trace=recorder)

    dispatches = list(recorder.of_kind("shard.dispatch"))
    collects = list(recorder.of_kind("shard.collect"))
    # chunk_size=64 over ~450 elements on 4 shards: several chunks/shard,
    # proving dispatch is incremental rather than one blob at finish.
    assert len(dispatches) > 4
    assert {e.fields["shard"] for e in collects} == {
        e.fields["shard"] for e in dispatches
    }
    for event in dispatches:
        assert event.fields["count"] > 0
        assert event.fields["bytes"] > 0
    for event in collects:
        assert event.fields["chunks"] >= 1
        assert event.fields["events"] > 0


def test_worker_trace_events_are_absorbed_and_retimestamped(pool):
    stream = keyed_stream(duration=8.0)
    recorder = TraceRecorder()
    operator = sharded_operator(2, pool, k=no_late_k(stream), mode="tree")
    run_pipeline(stream, operator, trace=recorder)
    # Worker-side kinds (per-element engine events) made it across.
    assert any(recorder.of_kind("window.close"))
    assert any(recorder.of_kind("buffer.release"))
    # Re-timestamping keeps every absorbed event within this recorder's
    # clock: non-negative and no later than the run.end record.
    run_end = max(e.wall_time for e in recorder.events)
    for event in recorder.events:
        assert 0.0 <= event.wall_time <= run_end


def test_registry_merges_worker_metric_deltas(pool):
    stream = keyed_stream()
    registry = MetricsRegistry()
    operator = sharded_operator(4, pool, k=no_late_k(stream))
    run_pipeline(stream, operator, registry=registry)
    shard_ids = {
        shard for shard in range(4)
        if registry.counter(f"shard.{shard}.elements_in").value
    }
    assert shard_ids
    total_chunks = sum(
        registry.counter(f"shard.{shard}.chunks").value for shard in shard_ids
    )
    total_wire = sum(
        registry.counter(f"shard.{shard}.wire_bytes").value for shard in shard_ids
    )
    assert total_chunks >= len(shard_ids)
    assert total_wire > 0


# --------------------------------------------------------------------- #
# fault injection


class BoomAggregate(CountAggregate):
    """Counts until 30 adds, then raises mid-chunk inside the worker."""

    def __init__(self) -> None:
        self.adds = 0

    def add(self, accumulator, value):
        self.adds += 1
        if self.adds > 30:
            raise RuntimeError("boom in worker")
        super().add(accumulator, value)

    def add_many(self, accumulator, values):
        for value in values:
            self.add(accumulator, value)


class ExitAggregate(CountAggregate):
    """Poison pill: kills the worker process outright after 30 adds."""

    def __init__(self) -> None:
        self.adds = 0

    def add(self, accumulator, value):
        self.adds += 1
        if self.adds > 30:
            os._exit(3)
        super().add(accumulator, value)

    def add_many(self, accumulator, values):
        for value in values:
            self.add(accumulator, value)


def fresh_handler():
    """Module-level handler factory (picklable prototype product)."""
    return KSlackHandler(1.0)


def run_fault(aggregate):
    stream = keyed_stream(duration=8.0)
    executor = ProcessShardExecutor(max_workers=2, chunk_size=16)
    try:
        operator = ShardedWindowOperator(
            2,
            ASSIGNER,
            aggregate,
            fresh_handler,
            executor=executor,
        )
        run_pipeline(stream, operator)
    finally:
        executor.close()


def test_worker_exception_mid_chunk_raises_with_diagnostics():
    with pytest.raises(ShardWorkerError) as excinfo:
        run_fault(BoomAggregate())
    message = str(excinfo.value)
    assert "boom in worker" in message
    assert "worker traceback" in message
    assert "shard" in message


def test_killed_worker_is_detected_with_exit_code_and_shards():
    with pytest.raises(ShardWorkerError) as excinfo:
        run_fault(ExitAggregate())
    message = str(excinfo.value)
    assert "died" in message
    assert "exit code" in message
    assert "owned shards" in message


def test_pool_recovers_after_a_worker_failure(pool):
    stream = keyed_stream(duration=5.0)
    k = no_late_k(stream)
    executor = ProcessShardExecutor(max_workers=2, chunk_size=16)
    try:
        with pytest.raises(ShardWorkerError):
            operator = ShardedWindowOperator(
                2, ASSIGNER, BoomAggregate(), fresh_handler, executor=executor
            )
            run_pipeline(stream, operator)
        # The next begin() rebuilds the pool transparently.
        output = run_pipeline(stream, sharded_operator(2, executor, k=k))
        assert output.results
    finally:
        executor.close()


def test_unpicklable_handler_is_rejected_at_build_time():
    handler = KSlackHandler(1.0)
    handler.on_release = lambda element: element  # closures cannot pickle
    executor = ProcessShardExecutor(max_workers=1)
    try:
        with pytest.raises(ConfigurationError) as excinfo:
            ShardedWindowOperator(
                2,
                ASSIGNER,
                make_aggregate("count"),
                lambda: handler,
                executor=executor,
            )
        message = str(excinfo.value)
        assert "disorder handler" in message
        assert "module-level" in message
    finally:
        executor.close()


# --------------------------------------------------------------------- #
# executor construction and the seam contract


@pytest.mark.parametrize("bad", [0, -1, 1.5, True])
def test_invalid_max_workers_rejected(bad):
    with pytest.raises(ConfigurationError):
        ProcessShardExecutor(max_workers=bad)


@pytest.mark.parametrize("bad", [0, -3, 2.0, False])
def test_invalid_chunk_size_rejected(bad):
    with pytest.raises(ConfigurationError):
        ProcessShardExecutor(chunk_size=bad)


def test_worker_count_caps_at_shards_and_cpus():
    executor = ProcessShardExecutor(max_workers=2)
    assert executor.worker_count(1) == 1
    assert executor.worker_count(8) == 2
    unlimited = ProcessShardExecutor()
    assert unlimited.worker_count(64) == min(64, os.cpu_count() or 1)


def test_batch_run_entry_point_is_rejected():
    executor = ProcessShardExecutor(max_workers=1)
    with pytest.raises(ConfigurationError):
        executor.run(lambda task: None, [])


def test_describe_names_the_strategy():
    assert ProcessShardExecutor(max_workers=4).describe() == "processes(4)"
    assert ProcessShardExecutor().describe() == "processes(auto)"
    assert ProcessShardExecutor(max_workers=4).chunk_size == DEFAULT_CHUNK_SIZE


# --------------------------------------------------------------------- #
# query-builder and CLI plumbing


def test_query_builder_process_executor_matches_thread(pool):
    from repro.queries.language import ContinuousQuery

    stream = keyed_stream(duration=8.0)

    def build(kind, executor=None):
        query = (
            ContinuousQuery()
            .from_elements(stream)
            .window(ASSIGNER)
            .aggregate("count")
            .with_slack(1.0)
            .shards(2)
        )
        return query.executor(executor if executor is not None else kind).run()

    thread_run = build("thread")
    process_run = build("process", executor=pool)
    assert canonical(process_run.results) == canonical(thread_run.results)


def test_query_builder_rejects_executor_without_shards():
    from repro.queries.language import ContinuousQuery

    query = (
        ContinuousQuery()
        .from_elements(keyed_stream(duration=2.0))
        .window(ASSIGNER)
        .aggregate("count")
        .with_slack(1.0)
        .executor("process")
    )
    with pytest.raises(QueryError):
        query.build_operator()


def test_query_builder_rejects_chunk_size_for_threads():
    from repro.queries.language import ContinuousQuery

    with pytest.raises(QueryError):
        ContinuousQuery().executor("thread", chunk_size=128)


def test_query_builder_rejects_unknown_executor():
    from repro.queries.language import ContinuousQuery

    with pytest.raises(QueryError):
        ContinuousQuery().executor("fiber")
