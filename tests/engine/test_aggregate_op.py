"""Tests for the windowed aggregation operator."""

import math

import pytest

from repro.engine.aggregate_op import WindowAggregateOperator, relative_error
from repro.engine.aggregates import CountAggregate, MeanAggregate, SumAggregate
from repro.engine.handlers import KSlackHandler, MPKSlackHandler, NoBufferHandler
from repro.engine.oracle import oracle_results
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner, TumblingWindowAssigner
from repro.errors import ConfigurationError
from repro.streams.delay import ConstantDelay, ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import generate_stream

from tests.conftest import make_arrived


class TestRelativeError:
    def test_exact_match(self):
        assert relative_error(5.0, 5.0) == 0.0

    def test_simple_ratio(self):
        assert relative_error(9.0, 10.0) == pytest.approx(0.1)

    def test_zero_truth_uses_epsilon(self):
        assert relative_error(1.0, 0.0) > 1.0

    def test_nan_vs_value_is_full_loss(self):
        assert relative_error(math.nan, 5.0) == 1.0
        assert relative_error(5.0, math.nan) == 1.0

    def test_nan_vs_nan_agrees(self):
        assert relative_error(math.nan, math.nan) == 0.0

    def test_symmetric_in_sign(self):
        assert relative_error(-9.0, -10.0) == pytest.approx(0.1)


class TestInOrderExactness:
    """With in-order input every handler reproduces the oracle exactly."""

    @pytest.mark.parametrize(
        "make_handler",
        [NoBufferHandler, lambda: KSlackHandler(1.0), MPKSlackHandler],
        ids=["no-buffer", "k-slack", "mp-k-slack"],
    )
    def test_matches_oracle(self, rng, make_handler):
        stream = inject_disorder(
            generate_stream(duration=30, rate=40, rng=rng), ConstantDelay(0.1), rng
        )
        assigner = SlidingWindowAssigner(size=5, slide=2)
        aggregate = MeanAggregate()
        operator = WindowAggregateOperator(assigner, aggregate, make_handler())
        output = run_pipeline(stream, operator)
        truth = oracle_results(stream, assigner, aggregate)
        emitted = {(r.key, r.window): r.value for r in output.results}
        assert set(emitted) == set(truth)
        for slot, (exact, __) in truth.items():
            assert emitted[slot] == pytest.approx(exact)
        assert operator.stats.late_dropped == 0


class TestSmallDeterministicScenario:
    """Hand-checked tumbling count over a tiny crafted disordered stream."""

    def make_stream(self):
        # (event_time, arrival_time, value); window size 10.
        return make_arrived(
            [
                (1.0, 1.0, 1.0),
                (4.0, 4.5, 1.0),
                (9.0, 9.0, 1.0),
                (12.0, 12.0, 1.0),  # clock passes 10: [0,10) closes (no-buffer)
                (8.0, 13.0, 1.0),  # late for [0,10)
                (15.0, 15.0, 1.0),
                (22.0, 22.0, 1.0),  # closes [10,20)
            ]
        )

    def test_no_buffer_drops_late(self):
        operator = WindowAggregateOperator(
            TumblingWindowAssigner(10.0), CountAggregate(), NoBufferHandler()
        )
        output = run_pipeline(self.make_stream(), operator)
        values = {r.window.start: r.value for r in output.results}
        assert values[0.0] == 3.0  # late element dropped
        assert values[10.0] == 2.0
        assert operator.stats.late_dropped == 1

    def test_sufficient_slack_includes_late(self):
        operator = WindowAggregateOperator(
            TumblingWindowAssigner(10.0), CountAggregate(), KSlackHandler(5.0)
        )
        output = run_pipeline(self.make_stream(), operator)
        values = {r.window.start: r.value for r in output.results}
        assert values[0.0] == 4.0  # late element recovered by the buffer
        assert operator.stats.late_dropped == 0

    def test_latency_reflects_slack(self):
        fast = WindowAggregateOperator(
            TumblingWindowAssigner(10.0), CountAggregate(), NoBufferHandler()
        )
        slow = WindowAggregateOperator(
            TumblingWindowAssigner(10.0), CountAggregate(), KSlackHandler(5.0)
        )
        fast_out = run_pipeline(self.make_stream(), fast)
        slow_out = run_pipeline(self.make_stream(), slow)
        fast_lat = {
            r.window.start: r.latency for r in fast_out.results if not r.flushed
        }
        slow_lat = {
            r.window.start: r.latency for r in slow_out.results if not r.flushed
        }
        assert slow_lat[0.0] > fast_lat[0.0]


class TestLatencyProperties:
    def test_non_flushed_latencies_non_negative(self, rng, small_disordered_stream):
        operator = WindowAggregateOperator(
            SlidingWindowAssigner(5, 1), MeanAggregate(), KSlackHandler(0.5)
        )
        output = run_pipeline(small_disordered_stream, operator)
        for result in output.results:
            if not result.flushed:
                assert result.latency >= 0.0

    def test_flushed_windows_marked(self, rng, small_disordered_stream):
        operator = WindowAggregateOperator(
            SlidingWindowAssigner(5, 1), MeanAggregate(), KSlackHandler(3.0)
        )
        output = run_pipeline(small_disordered_stream, operator)
        assert any(result.flushed for result in output.results)

    def test_results_emitted_in_window_end_order_per_round(
        self, rng, small_disordered_stream
    ):
        operator = WindowAggregateOperator(
            SlidingWindowAssigner(5, 1), MeanAggregate(), KSlackHandler(0.5)
        )
        output = run_pipeline(small_disordered_stream, operator)
        ends = [r.window.end for r in output.results]
        assert ends == sorted(ends)


class TestFeedback:
    def test_observed_errors_collected(self, rng):
        stream = inject_disorder(
            generate_stream(duration=60, rate=50, rng=rng), ExponentialDelay(0.5), rng
        )
        operator = WindowAggregateOperator(
            SlidingWindowAssigner(5, 1),
            CountAggregate(),
            NoBufferHandler(),
            feedback_horizon=10.0,
        )
        output = run_pipeline(stream, operator)
        assert len(output.observed_errors) > 0

    def test_observed_errors_reflect_true_error(self, rng):
        """Observed (feedback) error agrees with oracle error in aggregate."""
        stream = inject_disorder(
            generate_stream(duration=120, rate=50, rng=rng), ExponentialDelay(0.5), rng
        )
        assigner = SlidingWindowAssigner(5, 1)
        aggregate = CountAggregate()
        operator = WindowAggregateOperator(
            assigner, aggregate, NoBufferHandler(), feedback_horizon=30.0
        )
        output = run_pipeline(stream, operator)
        truth = oracle_results(stream, assigner, aggregate)
        emitted = {(r.key, r.window): r.value for r in output.results}
        true_errors = [
            relative_error(emitted[slot], exact)
            for slot, (exact, __) in truth.items()
            if slot in emitted
        ]
        observed_mean = sum(output.observed_errors) / len(output.observed_errors)
        true_mean = sum(true_errors) / len(true_errors)
        assert observed_mean == pytest.approx(true_mean, abs=0.01)

    def test_no_feedback_when_disabled(self, rng, small_disordered_stream):
        operator = WindowAggregateOperator(
            SlidingWindowAssigner(5, 1),
            CountAggregate(),
            NoBufferHandler(),
            track_feedback=False,
        )
        output = run_pipeline(small_disordered_stream, operator)
        assert output.observed_errors == []

    def test_exact_run_observes_zero_errors(self, rng):
        stream = inject_disorder(
            generate_stream(duration=30, rate=40, rng=rng), ConstantDelay(0.1), rng
        )
        operator = WindowAggregateOperator(
            SlidingWindowAssigner(5, 1), SumAggregate(), MPKSlackHandler()
        )
        output = run_pipeline(stream, operator)
        assert all(error == 0.0 for error in output.observed_errors)

    def test_negative_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowAggregateOperator(
                SlidingWindowAssigner(5, 1),
                CountAggregate(),
                NoBufferHandler(),
                feedback_horizon=-1.0,
            )


class TestKeyedStreams:
    def test_keys_aggregated_independently(self, rng):
        stream = generate_stream(duration=30, rate=60, rng=rng, keys=("a", "b"))
        arrived = inject_disorder(stream, ConstantDelay(0.0), rng)
        assigner = TumblingWindowAssigner(10.0)
        aggregate = CountAggregate()
        operator = WindowAggregateOperator(assigner, aggregate, NoBufferHandler())
        output = run_pipeline(arrived, operator)
        truth = oracle_results(arrived, assigner, aggregate)
        emitted = {(r.key, r.window): r.value for r in output.results}
        assert emitted == {slot: exact for slot, (exact, __) in truth.items()}
        keys = {r.key for r in output.results}
        assert keys == {"a", "b"}

    def test_missed_window_recorded(self):
        """A window whose only element is late is counted as missed."""
        stream = make_arrived(
            [
                (25.0, 25.0, 1.0),  # advances clock way past [0,10)
                (5.0, 26.0, 1.0),  # the only element of [0,10): late
                (40.0, 40.0, 1.0),
            ]
        )
        operator = WindowAggregateOperator(
            TumblingWindowAssigner(10.0),
            CountAggregate(),
            NoBufferHandler(),
            feedback_horizon=100.0,
        )
        output = run_pipeline(stream, operator)
        assert operator.stats.missed_windows == 1
        assert 1.0 in output.observed_errors  # full loss for the missed window
