"""Tests for trace persistence."""

import pytest

from repro.errors import ConfigurationError
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import generate_stream
from repro.streams.io import read_trace, write_trace


class TestTraceRoundtrip:
    def test_roundtrip_without_arrival(self, tmp_path, rng):
        elements = generate_stream(duration=5, rate=10, rng=rng)
        path = tmp_path / "trace.csv"
        n = write_trace(path, elements)
        assert n == len(elements)
        loaded = read_trace(path)
        assert loaded == elements

    def test_roundtrip_with_arrival_and_keys(self, tmp_path, rng):
        elements = generate_stream(duration=5, rate=10, rng=rng, keys=("x", "y"))
        arrived = inject_disorder(elements, ExponentialDelay(0.2), rng)
        path = tmp_path / "trace.csv"
        write_trace(path, arrived)
        loaded = read_trace(path)
        assert loaded == arrived

    def test_float_precision_preserved(self, tmp_path):
        el = StreamElement(event_time=1.0 / 3.0, value=2.0 / 7.0, seq=0)
        path = tmp_path / "trace.csv"
        write_trace(path, [el])
        loaded = read_trace(path)
        assert loaded[0].event_time == el.event_time
        assert loaded[0].value == el.value

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.csv"
        write_trace(path, [])
        assert path.exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_trace(tmp_path / "absent.csv")

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ConfigurationError):
            read_trace(path)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_trace(path, [])
        assert read_trace(path) == []
