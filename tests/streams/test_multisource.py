"""Tests for multi-source merging and frontier combination."""

import pytest

from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import CountAggregate
from repro.engine.oracle import oracle_results
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import TumblingWindowAssigner
from repro.errors import ConfigurationError
from repro.streams.delay import ConstantDelay, ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement, ensure_arrival_order
from repro.streams.generators import generate_stream
from repro.engine.multisource import MultiSourceWatermarkHandler
from repro.streams.multisource import merge_streams


def source_stream(rng, key, duration=30, rate=20, delay=0.2):
    base = generate_stream(duration=duration, rate=rate, rng=rng)
    keyed = [
        StreamElement(event_time=el.event_time, value=el.value, key=key, seq=el.seq)
        for el in base
    ]
    return inject_disorder(keyed, ConstantDelay(delay), rng)


def el(source, ts, at):
    return StreamElement(event_time=ts, value=0.0, key=source, arrival_time=at)


class TestMergeStreams:
    def test_result_arrival_ordered(self, rng):
        merged = merge_streams(
            [source_stream(rng, "a"), source_stream(rng, "b", delay=1.0)]
        )
        ensure_arrival_order(merged)

    def test_preserves_all_elements(self, rng):
        streams = [source_stream(rng, "a"), source_stream(rng, "b")]
        merged = merge_streams(streams)
        assert len(merged) == sum(len(s) for s in streams)

    def test_seq_unique(self, rng):
        merged = merge_streams(
            [source_stream(rng, "a"), source_stream(rng, "b")]
        )
        seqs = [element.seq for element in merged]
        assert len(seqs) == len(set(seqs))

    def test_requires_arrival_times(self, rng):
        plain = generate_stream(duration=5, rate=10, rng=rng)
        with pytest.raises(ConfigurationError):
            merge_streams([plain])

    def test_empty(self):
        assert merge_streams([]) == []


class TestMultiSourceWatermarkHandler:
    def test_frontier_is_minimum_over_sources(self):
        handler = MultiSourceWatermarkHandler(
            source_of=lambda e: e.key, expected_sources={"fast", "slow"}
        )
        handler.offer(el("fast", 10.0, 10.0))
        assert handler.frontier == float("-inf")  # slow source not seen yet
        handler.offer(el("slow", 2.0, 10.1))
        # The slow source pins the frontier.
        assert handler.frontier == 2.0
        handler.offer(el("slow", 8.0, 10.2))
        assert handler.frontier == 8.0

    def test_lag_subtracted(self):
        handler = MultiSourceWatermarkHandler(source_of=lambda e: e.key, lag=1.5)
        handler.offer(el("s", 10.0, 10.0))
        assert handler.frontier == 8.5

    def test_frontier_monotone(self):
        handler = MultiSourceWatermarkHandler(source_of=lambda e: e.key)
        handler.offer(el("a", 10.0, 10.0))
        handler.offer(el("b", 5.0, 10.1))
        before = handler.frontier
        handler.offer(el("c", 1.0, 10.2))  # new slower source appears
        assert handler.frontier >= before  # never regresses

    def test_idle_source_released_after_timeout(self):
        handler = MultiSourceWatermarkHandler(
            source_of=lambda e: e.key,
            idle_timeout=5.0,
            expected_sources={"dead", "live"},
        )
        handler.offer(el("dead", 1.0, 1.0))
        handler.offer(el("live", 3.5, 4.0))
        assert handler.frontier == 1.0  # dead source still live
        handler.offer(el("live", 20.0, 20.0))  # dead silent for 19s > 5s
        assert handler.frontier == 20.0
        assert handler.idle_sources() == ["dead"]

    def test_idle_source_rejoins(self):
        handler = MultiSourceWatermarkHandler(
            source_of=lambda e: e.key,
            idle_timeout=5.0,
            expected_sources={"a", "b"},
        )
        handler.offer(el("a", 1.0, 1.0))
        handler.offer(el("b", 2.0, 2.0))
        assert handler.frontier == 1.0
        handler.offer(el("b", 10.0, 10.0))  # a silent for 9s > 5s: idle
        assert handler.frontier == 10.0
        handler.offer(el("a", 9.5, 10.5))  # a wakes up behind the frontier
        assert handler.frontier == 10.0  # monotone despite rejoin
        assert handler.idle_sources() == []

    def test_all_sources_idle_falls_back(self):
        handler = MultiSourceWatermarkHandler(
            source_of=lambda e: e.key, idle_timeout=1.0
        )
        handler.offer(el("a", 5.0, 5.0))
        handler.offer(el("a", 6.0, 16.0))
        assert handler.frontier >= 5.0

    def test_requires_arrival(self):
        handler = MultiSourceWatermarkHandler(source_of=lambda e: e.key)
        with pytest.raises(ConfigurationError):
            handler.offer(StreamElement(event_time=1.0, value=0.0))

    @pytest.mark.parametrize("kwargs", [{"lag": -1.0}, {"idle_timeout": 0.0}])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MultiSourceWatermarkHandler(source_of=lambda e: e.key, **kwargs)

    def test_end_to_end_exactness_with_skewed_sources(self, rng):
        """Two mutually-skewed but internally-ordered sources: the min
        frontier yields exact results."""
        fast = source_stream(rng, "fast", delay=0.1)
        slow = source_stream(rng, "slow", delay=3.0)
        merged = merge_streams([fast, slow])
        assigner = TumblingWindowAssigner(5.0)
        aggregate = CountAggregate()
        operator = WindowAggregateOperator(
            assigner,
            aggregate,
            MultiSourceWatermarkHandler(source_of=lambda e: e.key),
        )
        output = run_pipeline(merged, operator)
        truth = oracle_results(merged, assigner, aggregate)
        emitted = {(r.key, r.window): r.value for r in output.results}
        assert emitted == {slot: value for slot, (value, __) in truth.items()}
        assert operator.stats.late_dropped == 0
