"""Tests for disorder injection and disorder metrics."""

import pytest

from repro.streams.delay import ConstantDelay, ExponentialDelay, UniformDelay
from repro.streams.disorder import count_inversions, inject_disorder, measure_disorder
from repro.streams.element import StreamElement, ensure_arrival_order
from repro.streams.generators import generate_stream


class TestInjectDisorder:
    def test_preserves_element_count(self, rng, small_inorder_stream):
        out = inject_disorder(small_inorder_stream, ExponentialDelay(0.3), rng)
        assert len(out) == len(small_inorder_stream)

    def test_output_in_arrival_order(self, rng, small_inorder_stream):
        out = inject_disorder(small_inorder_stream, ExponentialDelay(0.3), rng)
        ensure_arrival_order(out)

    def test_constant_delay_preserves_event_order(self, rng, small_inorder_stream):
        out = inject_disorder(small_inorder_stream, ConstantDelay(1.0), rng)
        event_times = [el.event_time for el in out]
        assert event_times == sorted(event_times)

    def test_arrival_equals_event_plus_delay(self, rng, small_inorder_stream):
        out = inject_disorder(small_inorder_stream, ConstantDelay(0.5), rng)
        for el in out:
            assert el.delay == pytest.approx(0.5)

    def test_seq_assigned_in_event_order(self, rng, small_inorder_stream):
        out = inject_disorder(small_inorder_stream, ExponentialDelay(0.3), rng)
        by_seq = sorted(out, key=lambda el: el.seq)
        event_times = [el.event_time for el in by_seq]
        assert event_times == sorted(event_times)

    def test_values_preserved(self, rng, small_inorder_stream):
        out = inject_disorder(small_inorder_stream, ExponentialDelay(0.3), rng)
        assert sorted(el.value for el in out) == sorted(
            el.value for el in small_inorder_stream
        )

    def test_deterministic_given_seed(self, small_inorder_stream):
        import numpy as np

        out1 = inject_disorder(
            small_inorder_stream, ExponentialDelay(0.3), np.random.default_rng(5)
        )
        out2 = inject_disorder(
            small_inorder_stream, ExponentialDelay(0.3), np.random.default_rng(5)
        )
        assert out1 == out2


class TestCountInversions:
    def test_sorted_has_zero(self):
        assert count_inversions([1.0, 2.0, 3.0, 4.0]) == 0

    def test_reversed_is_worst_case(self):
        n = 6
        assert count_inversions(list(range(n, 0, -1))) == n * (n - 1) // 2

    def test_single_swap(self):
        assert count_inversions([1.0, 3.0, 2.0]) == 1

    def test_matches_bruteforce(self, rng):
        values = list(rng.random(40))
        brute = sum(
            1
            for i in range(len(values))
            for j in range(i + 1, len(values))
            if values[i] > values[j]
        )
        assert count_inversions(values) == brute

    def test_empty_and_singleton(self):
        assert count_inversions([]) == 0
        assert count_inversions([1.0]) == 0


class TestMeasureDisorder:
    def test_empty_stream(self):
        stats = measure_disorder([])
        assert stats.n_elements == 0
        assert stats.out_of_order_fraction == 0.0

    def test_in_order_stream(self, rng, small_inorder_stream):
        out = inject_disorder(small_inorder_stream, ConstantDelay(0.2), rng)
        stats = measure_disorder(out)
        assert stats.out_of_order_fraction == 0.0
        assert stats.normalized_inversions == 0.0
        assert stats.max_displacement == 0.0
        assert stats.mean_delay == pytest.approx(0.2)

    def test_disordered_stream_has_late_elements(self, rng, small_inorder_stream):
        out = inject_disorder(small_inorder_stream, UniformDelay(0.0, 2.0), rng)
        stats = measure_disorder(out)
        assert stats.out_of_order_fraction > 0.0
        assert stats.normalized_inversions > 0.0
        assert stats.max_displacement > 0.0
        assert stats.max_delay < 2.0

    def test_quantiles_ordered(self, rng, small_inorder_stream):
        out = inject_disorder(small_inorder_stream, ExponentialDelay(0.4), rng)
        stats = measure_disorder(out)
        assert stats.p50_delay <= stats.p95_delay <= stats.p99_delay <= stats.max_delay

    def test_crafted_displacement(self):
        # Element with event time 0 arrives after an element with event 10.
        elements = [
            StreamElement(event_time=10.0, value=0, arrival_time=10.0, seq=1),
            StreamElement(event_time=0.0, value=0, arrival_time=11.0, seq=0),
        ]
        stats = measure_disorder(elements)
        assert stats.out_of_order_fraction == 0.5
        assert stats.max_displacement == 10.0

    def test_heavier_delays_mean_more_disorder(self, rng):
        stream = generate_stream(duration=20, rate=50, rng=rng)
        light = measure_disorder(inject_disorder(stream, UniformDelay(0, 0.05), rng))
        heavy = measure_disorder(inject_disorder(stream, UniformDelay(0, 2.0), rng))
        assert heavy.out_of_order_fraction > light.out_of_order_fraction


class TestInjectFifoDisorder:
    def test_single_channel_is_in_order(self, rng, small_inorder_stream):
        from repro.streams.disorder import inject_fifo_disorder
        from repro.streams.delay import ExponentialDelay

        out = inject_fifo_disorder(
            small_inorder_stream, ExponentialDelay(1.0), rng
        )
        # Unkeyed stream = one channel: FIFO delivery keeps event order.
        event_times = [el.event_time for el in out]
        assert event_times == sorted(event_times)

    def test_per_channel_fifo_property(self, rng):
        from repro.streams.delay import ExponentialDelay
        from repro.streams.disorder import inject_fifo_disorder
        from repro.streams.generators import generate_stream

        stream = generate_stream(duration=30, rate=60, rng=rng, keys=("a", "b", "c"))
        out = inject_fifo_disorder(stream, ExponentialDelay(1.0), rng)
        per_key_events: dict = {}
        for element in out:  # arrival order
            per_key_events.setdefault(element.key, []).append(element.event_time)
        for events in per_key_events.values():
            assert events == sorted(events)

    def test_cross_channel_disorder_remains(self, rng):
        from repro.streams.delay import ExponentialDelay
        from repro.streams.disorder import inject_fifo_disorder
        from repro.streams.generators import generate_stream

        stream = generate_stream(duration=60, rate=100, rng=rng, keys=("a", "b", "c"))
        out = inject_fifo_disorder(stream, ExponentialDelay(1.0), rng)
        stats = measure_disorder(out)
        assert stats.out_of_order_fraction > 0.0

    def test_custom_channel_selector(self, rng, small_inorder_stream):
        from repro.streams.delay import ExponentialDelay
        from repro.streams.disorder import inject_fifo_disorder

        # Everything on one explicit channel: fully ordered.
        out = inject_fifo_disorder(
            small_inorder_stream,
            ExponentialDelay(1.0),
            rng,
            channel_of=lambda el: "the-only-pipe",
        )
        event_times = [el.event_time for el in out]
        assert event_times == sorted(event_times)

    def test_arrivals_never_precede_events(self, rng, small_inorder_stream):
        from repro.streams.delay import ExponentialDelay
        from repro.streams.disorder import inject_fifo_disorder

        out = inject_fifo_disorder(small_inorder_stream, ExponentialDelay(0.5), rng)
        for element in out:
            assert element.arrival_time >= element.event_time

    def test_preserves_all_elements(self, rng):
        from repro.streams.delay import ExponentialDelay
        from repro.streams.disorder import inject_fifo_disorder
        from repro.streams.generators import generate_stream

        stream = generate_stream(duration=20, rate=50, rng=rng, keys=("a", "b"))
        out = inject_fifo_disorder(stream, ExponentialDelay(0.5), rng)
        assert len(out) == len(stream)
