"""Tests for simulated clocks and the event-time frontier."""

import pytest

from repro.errors import ConfigurationError
from repro.streams.timebase import EventTimeFrontier, SimulatedClock


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now == 0.0

    def test_custom_start(self):
        assert SimulatedClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedClock(-1.0)

    def test_advance_to_moves_forward(self):
        clock = SimulatedClock()
        assert clock.advance_to(3.0) == 3.0
        assert clock.now == 3.0

    def test_advance_to_never_regresses(self):
        clock = SimulatedClock()
        clock.advance_to(3.0)
        assert clock.advance_to(1.0) == 3.0
        assert clock.now == 3.0

    def test_advance_by(self):
        clock = SimulatedClock(1.0)
        assert clock.advance_by(0.5) == 1.5

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedClock().advance_by(-0.1)


class TestEventTimeFrontier:
    def test_initial_state(self):
        frontier = EventTimeFrontier()
        assert frontier.value == float("-inf")
        assert frontier.count == 0

    def test_observe_tracks_max(self):
        frontier = EventTimeFrontier()
        frontier.observe(3.0)
        frontier.observe(1.0)
        frontier.observe(5.0)
        assert frontier.value == 5.0
        assert frontier.count == 3

    def test_observe_returns_frontier(self):
        frontier = EventTimeFrontier()
        assert frontier.observe(2.0) == 2.0
        assert frontier.observe(1.0) == 2.0
