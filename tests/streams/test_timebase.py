"""Tests for simulated clocks and the event-time frontier."""

import pytest

from repro.errors import ConfigurationError
from repro.streams.timebase import EventTimeFrontier, SimulatedClock, times_equal


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now == 0.0

    def test_custom_start(self):
        assert SimulatedClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedClock(-1.0)

    def test_advance_to_moves_forward(self):
        clock = SimulatedClock()
        assert clock.advance_to(3.0) == 3.0
        assert clock.now == 3.0

    def test_advance_to_never_regresses(self):
        clock = SimulatedClock()
        clock.advance_to(3.0)
        assert clock.advance_to(1.0) == 3.0
        assert clock.now == 3.0

    def test_advance_by(self):
        clock = SimulatedClock(1.0)
        assert clock.advance_by(0.5) == 1.5

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedClock().advance_by(-0.1)


class TestEventTimeFrontier:
    def test_initial_state(self):
        frontier = EventTimeFrontier()
        assert frontier.value == float("-inf")
        assert frontier.count == 0

    def test_observe_tracks_max(self):
        frontier = EventTimeFrontier()
        frontier.observe(3.0)
        frontier.observe(1.0)
        frontier.observe(5.0)
        assert frontier.value == 5.0
        assert frontier.count == 3

    def test_observe_returns_frontier(self):
        frontier = EventTimeFrontier()
        assert frontier.observe(2.0) == 2.0
        assert frontier.observe(1.0) == 2.0


class TestTimesEqual:
    def test_exact_matches_short_circuit(self):
        assert times_equal(1.5, 1.5)
        assert times_equal(float("inf"), float("inf"))
        assert times_equal(float("-inf"), float("-inf"))
        assert not times_equal(float("inf"), float("-inf"))

    def test_infinite_sentinel_vs_finite_time_is_never_equal(self):
        # rtol * inf would otherwise swallow any finite timestamp.
        assert not times_equal(float("inf"), 1e300)
        assert not times_equal(1e300, float("inf"))
        assert not times_equal(float("-inf"), 0.0)
        assert not times_equal(float("nan"), float("nan"))

    def test_near_zero_rounding_noise_is_absorbed(self):
        # 0.1 + 0.2 - 0.3 leaves ~5.6e-17 of float residue.  A *pure*
        # relative tolerance collapses to ~5.6e-26 at this magnitude and
        # would call these unequal; the atol floor absorbs it.
        residue = 0.1 + 0.2 - 0.3
        assert residue != 0.0  # repro-lint: disable=R03 - asserting the residue exists
        assert times_equal(residue, 0.0)
        assert times_equal(0.0, residue)

    def test_zero_epoch_timestamps(self):
        # Streams here start at epoch 0.0: sub-atol noise around zero is
        # equal, anything meaningfully nonzero is not.
        assert times_equal(0.0, 1e-12)
        assert times_equal(-1e-12, 1e-12)
        assert not times_equal(0.0, 1e-6)

    def test_relative_tolerance_at_large_magnitude(self):
        base = 1e6
        assert times_equal(base, base * (1.0 + 1e-10))
        assert not times_equal(base, base + 1.0)

    def test_atol_is_overridable(self):
        assert times_equal(0.0, 0.5, atol=1.0)
        assert not times_equal(0.0, 0.5)
        # atol=0 restores the old pure-relative behaviour near zero
        residue = 0.1 + 0.2 - 0.3
        assert not times_equal(residue, 0.0, atol=0.0)

    def test_asymmetric_argument_order(self):
        assert times_equal(1e-10, 2e-10) == times_equal(2e-10, 1e-10)
