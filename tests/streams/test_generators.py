"""Tests for workload generation (arrival and value processes)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams.generators import (
    ConstantValues,
    GaussianValues,
    RandomWalkValues,
    SinusoidValues,
    SpikyValues,
    UniformValues,
    generate_stream,
)


class TestGenerateStream:
    def test_uniform_arrivals_exact_count(self, rng):
        elements = generate_stream(duration=10, rate=5, rng=rng, arrival="uniform")
        assert len(elements) == 50

    def test_uniform_arrivals_evenly_spaced(self, rng):
        elements = generate_stream(duration=2, rate=4, rng=rng, arrival="uniform")
        gaps = [
            b.event_time - a.event_time for a, b in zip(elements, elements[1:])
        ]
        assert all(gap == pytest.approx(0.25) for gap in gaps)

    def test_poisson_arrivals_approximate_count(self, rng):
        elements = generate_stream(duration=100, rate=50, rng=rng, arrival="poisson")
        assert 4200 <= len(elements) <= 5800

    def test_event_times_within_duration(self, rng):
        elements = generate_stream(duration=10, rate=20, rng=rng)
        assert all(0 <= el.event_time < 10 for el in elements)

    def test_in_event_order(self, rng):
        elements = generate_stream(duration=10, rate=20, rng=rng)
        times = [el.event_time for el in elements]
        assert times == sorted(times)

    def test_seq_is_sequential(self, rng):
        elements = generate_stream(duration=5, rate=10, rng=rng)
        assert [el.seq for el in elements] == list(range(len(elements)))

    def test_unkeyed_by_default(self, rng):
        elements = generate_stream(duration=5, rate=10, rng=rng)
        assert all(el.key is None for el in elements)

    def test_keys_sampled_from_universe(self, rng):
        keys = ("a", "b", "c")
        elements = generate_stream(duration=20, rate=20, rng=rng, keys=keys)
        seen = {el.key for el in elements}
        assert seen <= set(keys)
        assert len(seen) == 3  # all keys appear at this volume

    def test_no_arrival_times_assigned(self, rng):
        elements = generate_stream(duration=5, rate=10, rng=rng)
        assert all(el.arrival_time is None for el in elements)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration": 0, "rate": 1},
            {"duration": 10, "rate": 0},
            {"duration": 10, "rate": 5, "arrival": "bogus"},
        ],
    )
    def test_invalid_parameters_rejected(self, rng, kwargs):
        with pytest.raises(ConfigurationError):
            generate_stream(rng=rng, **kwargs)

    def test_deterministic_given_seed(self):
        a = generate_stream(duration=10, rate=10, rng=np.random.default_rng(3))
        b = generate_stream(duration=10, rate=10, rng=np.random.default_rng(3))
        assert a == b


class TestValueProcesses:
    def test_constant(self, rng):
        process = ConstantValues(7.0)
        assert process.sample(rng, 0.0, None) == 7.0

    def test_uniform_bounds(self, rng):
        process = UniformValues(2.0, 3.0)
        for __ in range(100):
            assert 2.0 <= process.sample(rng, 0.0, None) < 3.0

    def test_uniform_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformValues(3.0, 2.0)

    def test_gaussian_stats(self, rng):
        process = GaussianValues(mean=5.0, std=0.5)
        samples = [process.sample(rng, 0.0, None) for __ in range(5000)]
        assert np.mean(samples) == pytest.approx(5.0, abs=0.1)
        assert np.std(samples) == pytest.approx(0.5, abs=0.05)

    def test_gaussian_negative_std_rejected(self):
        with pytest.raises(ConfigurationError):
            GaussianValues(0.0, -1.0)

    def test_random_walk_is_continuous(self, rng):
        process = RandomWalkValues(start=100.0, volatility=0.1)
        previous = process.sample(rng, 0.0, "k")
        for __ in range(50):
            current = process.sample(rng, 0.0, "k")
            assert abs(current - previous) < 1.0  # ~10 sigma
            previous = current

    def test_random_walk_per_key_state(self, rng):
        process = RandomWalkValues(start=100.0, volatility=0.0, drift=1.0)
        assert process.sample(rng, 0.0, "a") == pytest.approx(101.0)
        assert process.sample(rng, 0.0, "b") == pytest.approx(101.0)
        assert process.sample(rng, 0.0, "a") == pytest.approx(102.0)

    def test_random_walk_reset(self, rng):
        process = RandomWalkValues(start=10.0, volatility=0.0, drift=1.0)
        process.sample(rng, 0.0, "a")
        process.reset()
        assert process.sample(rng, 0.0, "a") == pytest.approx(11.0)

    def test_sinusoid_within_envelope(self, rng):
        process = SinusoidValues(base=20.0, amplitude=5.0, period=60.0, noise_std=0.0)
        for t in np.linspace(0, 120, 50):
            value = process.sample(rng, float(t), None)
            assert 15.0 <= value <= 25.0

    def test_sinusoid_bad_period(self):
        with pytest.raises(ConfigurationError):
            SinusoidValues(period=0.0)

    def test_spiky_produces_spikes(self, rng):
        process = SpikyValues(base=1.0, spike_magnitude=100.0, spike_probability=0.2)
        samples = [process.sample(rng, 0.0, None) for __ in range(500)]
        assert max(samples) > 10.0
        assert min(samples) < 2.0

    def test_spiky_bad_probability(self):
        with pytest.raises(ConfigurationError):
            SpikyValues(spike_probability=1.5)
