"""Tests for the stream element data model."""

import pytest

from repro.errors import ConfigurationError, StreamOrderError
from repro.streams.element import StreamElement, Watermark, ensure_arrival_order


class TestStreamElement:
    def test_basic_construction(self):
        el = StreamElement(event_time=1.5, value=42.0, key="a", seq=3)
        assert el.event_time == 1.5
        assert el.value == 42.0
        assert el.key == "a"
        assert el.seq == 3
        assert el.arrival_time is None

    def test_negative_event_time_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamElement(event_time=-0.1, value=0.0)

    def test_arrival_before_event_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamElement(event_time=5.0, value=0.0, arrival_time=4.9)

    def test_arrival_equal_event_allowed(self):
        el = StreamElement(event_time=5.0, value=0.0, arrival_time=5.0)
        assert el.delay == 0.0

    def test_delay(self):
        el = StreamElement(event_time=2.0, value=0.0, arrival_time=3.25)
        assert el.delay == pytest.approx(1.25)

    def test_delay_without_arrival_raises(self):
        el = StreamElement(event_time=2.0, value=0.0)
        with pytest.raises(ConfigurationError):
            __ = el.delay

    def test_with_arrival_preserves_fields(self):
        el = StreamElement(event_time=2.0, value=7.0, key="k", seq=9)
        arrived = el.with_arrival(3.0)
        assert arrived.arrival_time == 3.0
        assert arrived.value == 7.0
        assert arrived.key == "k"
        assert arrived.seq == 9
        # original untouched (immutability)
        assert el.arrival_time is None

    def test_with_arrival_sets_seq(self):
        el = StreamElement(event_time=2.0, value=7.0)
        arrived = el.with_arrival(3.0, seq=5)
        assert arrived.seq == 5

    def test_sort_keys(self):
        el = StreamElement(event_time=2.0, value=0.0, arrival_time=3.0, seq=4)
        assert el.arrival_sort_key() == (3.0, 4)
        assert el.event_sort_key() == (2.0, 4)

    def test_arrival_sort_key_requires_arrival(self):
        el = StreamElement(event_time=2.0, value=0.0)
        with pytest.raises(ConfigurationError):
            el.arrival_sort_key()

    def test_immutability(self):
        el = StreamElement(event_time=1.0, value=2.0)
        with pytest.raises(AttributeError):
            el.value = 3.0  # type: ignore[misc]


class TestWatermark:
    def test_construction(self):
        assert Watermark(5.0).timestamp == 5.0


class TestEnsureArrivalOrder:
    def test_accepts_sorted(self):
        elements = [
            StreamElement(event_time=0.0, value=0, arrival_time=1.0, seq=0),
            StreamElement(event_time=0.5, value=0, arrival_time=1.0, seq=1),
            StreamElement(event_time=0.2, value=0, arrival_time=2.0, seq=2),
        ]
        assert ensure_arrival_order(elements) is elements

    def test_rejects_unsorted(self):
        elements = [
            StreamElement(event_time=0.0, value=0, arrival_time=2.0, seq=0),
            StreamElement(event_time=0.5, value=0, arrival_time=1.0, seq=1),
        ]
        with pytest.raises(StreamOrderError):
            ensure_arrival_order(elements)

    def test_rejects_tie_with_decreasing_seq(self):
        elements = [
            StreamElement(event_time=0.0, value=0, arrival_time=1.0, seq=5),
            StreamElement(event_time=0.5, value=0, arrival_time=1.0, seq=1),
        ]
        with pytest.raises(StreamOrderError):
            ensure_arrival_order(elements)

    def test_empty_ok(self):
        assert ensure_arrival_order([]) == []
