"""Tests for the delay-model library."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams.delay import (
    BurstyDelay,
    ConstantDelay,
    ExponentialDelay,
    GaussianDelay,
    LognormalDelay,
    MixtureDelay,
    ParetoDelay,
    RegimeSwitchingDelay,
    ShiftedDelay,
    UniformDelay,
    empirical_quantile,
)

ALL_MODELS = [
    ConstantDelay(0.5),
    UniformDelay(0.1, 0.9),
    ExponentialDelay(0.4),
    ParetoDelay(shape=2.0, scale=0.5),
    LognormalDelay(mu=-1.0, sigma=0.8),
    GaussianDelay(mean_delay=0.3, std=0.2),
    ShiftedDelay(0.1, ExponentialDelay(0.2)),
    MixtureDelay([(0.7, ConstantDelay(0.1)), (0.3, ExponentialDelay(1.0))]),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.describe())
def test_samples_are_non_negative(model, rng):
    for __ in range(500):
        assert model.sample(rng, 0.0) >= 0.0


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.describe())
def test_describe_is_nonempty_string(model):
    assert isinstance(model.describe(), str)
    assert model.describe()


@pytest.mark.parametrize(
    "model",
    [
        ConstantDelay(0.5),
        UniformDelay(0.1, 0.9),
        ExponentialDelay(0.4),
        ParetoDelay(shape=3.0, scale=0.5),
        ShiftedDelay(0.1, ExponentialDelay(0.2)),
        MixtureDelay([(0.7, ConstantDelay(0.1)), (0.3, ExponentialDelay(1.0))]),
    ],
    ids=lambda m: m.describe(),
)
def test_analytic_mean_matches_empirical(model, rng):
    samples = [model.sample(rng, 0.0) for __ in range(40000)]
    assert np.mean(samples) == pytest.approx(model.mean(), rel=0.1)


class TestConstantDelay:
    def test_deterministic(self, rng):
        model = ConstantDelay(0.7)
        assert model.sample(rng, 0.0) == 0.7
        assert model.sample(rng, 99.0) == 0.7

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantDelay(-0.1)


class TestUniformDelay:
    def test_within_bounds(self, rng):
        model = UniformDelay(0.2, 0.5)
        for __ in range(200):
            assert 0.2 <= model.sample(rng, 0.0) < 0.5

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformDelay(0.5, 0.2)
        with pytest.raises(ConfigurationError):
            UniformDelay(-0.1, 0.2)


class TestExponentialDelay:
    def test_nonpositive_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            ExponentialDelay(0.0)


class TestParetoDelay:
    def test_infinite_mean_for_heavy_tail(self):
        assert ParetoDelay(shape=1.0, scale=1.0).mean() == math.inf
        assert ParetoDelay(shape=0.8, scale=1.0).mean() == math.inf

    def test_finite_mean(self):
        assert ParetoDelay(shape=2.0, scale=1.0).mean() == pytest.approx(1.0)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ParetoDelay(shape=0.0, scale=1.0)
        with pytest.raises(ConfigurationError):
            ParetoDelay(shape=1.0, scale=0.0)

    def test_heavier_tail_has_larger_quantiles(self, rng):
        q_heavy = empirical_quantile(ParetoDelay(1.2, 1.0), 0.99, rng)
        q_light = empirical_quantile(ParetoDelay(3.0, 1.0), 0.99, rng)
        assert q_heavy > q_light


class TestGaussianDelay:
    def test_truncated_at_zero(self, rng):
        model = GaussianDelay(mean_delay=0.01, std=1.0)
        samples = [model.sample(rng, 0.0) for __ in range(500)]
        assert min(samples) >= 0.0

    def test_negative_params_rejected(self):
        with pytest.raises(ConfigurationError):
            GaussianDelay(-0.1, 0.1)
        with pytest.raises(ConfigurationError):
            GaussianDelay(0.1, -0.1)


class TestMixtureDelay:
    def test_weights_normalized(self):
        model = MixtureDelay([(2.0, ConstantDelay(0.1)), (2.0, ConstantDelay(0.3))])
        assert model.mean() == pytest.approx(0.2)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MixtureDelay([])

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            MixtureDelay([(-1.0, ConstantDelay(0.1)), (2.0, ConstantDelay(0.3))])

    def test_samples_come_from_components(self, rng):
        model = MixtureDelay([(0.5, ConstantDelay(0.1)), (0.5, ConstantDelay(0.9))])
        seen = {model.sample(rng, 0.0) for __ in range(200)}
        assert seen == {0.1, 0.9}


class TestRegimeSwitchingDelay:
    def test_selects_regime_by_event_time(self, rng):
        model = RegimeSwitchingDelay(
            [(0.0, ConstantDelay(0.1)), (10.0, ConstantDelay(5.0))]
        )
        assert model.sample(rng, 5.0) == 0.1
        assert model.sample(rng, 10.0) == 5.0
        assert model.sample(rng, 50.0) == 5.0

    def test_must_start_at_zero(self):
        with pytest.raises(ConfigurationError):
            RegimeSwitchingDelay([(1.0, ConstantDelay(0.1))])

    def test_breakpoints_must_ascend(self):
        with pytest.raises(ConfigurationError):
            RegimeSwitchingDelay(
                [(0.0, ConstantDelay(0.1)), (5.0, ConstantDelay(1.0)),
                 (3.0, ConstantDelay(2.0))]
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            RegimeSwitchingDelay([])


class TestBurstyDelay:
    def test_burst_window(self, rng):
        model = BurstyDelay(
            calm=ConstantDelay(0.1),
            burst=ConstantDelay(3.0),
            burst_start=10.0,
            burst_end=20.0,
        )
        assert model.sample(rng, 5.0) == 0.1
        assert model.sample(rng, 15.0) == 3.0
        assert model.sample(rng, 25.0) == 0.1

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            BurstyDelay(ConstantDelay(0.1), ConstantDelay(1.0), 20.0, 10.0)


class TestEmpiricalQuantile:
    def test_constant_model(self, rng):
        assert empirical_quantile(ConstantDelay(0.5), 0.9, rng) == pytest.approx(0.5)

    def test_monotone_in_q(self, rng):
        model = ExponentialDelay(0.5)
        q50 = empirical_quantile(model, 0.5, rng, n_samples=5000)
        q95 = empirical_quantile(model, 0.95, rng, n_samples=5000)
        assert q50 <= q95

    def test_bad_q_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            empirical_quantile(ConstantDelay(0.5), 1.5, rng)
