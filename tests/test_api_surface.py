"""API-surface hygiene: exports resolve, docstrings exist, errors unify.

These tests keep the public surface honest: every name a package's
``__all__`` advertises must import, every public module/class/function must
carry a docstring, and everything the library raises must descend from
``ReproError``.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.engine",
    "repro.streams",
    "repro.queries",
    "repro.workloads",
    "repro.bench",
    "repro.obs",
    "repro.docs",
]


def all_modules():
    names = []
    package = importlib.import_module("repro")
    for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} has no __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} does not resolve"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted_and_unique(package_name):
    package = importlib.import_module(package_name)
    exported = list(package.__all__)
    assert exported == sorted(exported), f"{package_name}.__all__ not sorted"
    assert len(exported) == len(set(exported)), f"{package_name}.__all__ has dupes"


@pytest.mark.parametrize("module_name", all_modules())
def test_every_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", all_modules())
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        assert item.__doc__ and item.__doc__.strip(), f"{module_name}.{name}"
        if inspect.isclass(item):
            for method_name, method in vars(item).items():
                if method_name.startswith("_") or not inspect.isfunction(method):
                    continue
                if method.__doc__:
                    continue
                # Overrides inherit their contract from a documented base.
                inherited = any(
                    getattr(base, method_name, None) is not None
                    and getattr(base, method_name).__doc__
                    for base in item.__mro__[1:]
                )
                assert inherited, f"{module_name}.{name}.{method_name} lacks a docstring"


def test_exceptions_unify_under_repro_error():
    from repro import errors

    for name, item in vars(errors).items():
        if inspect.isclass(item) and issubclass(item, Exception):
            assert issubclass(item, errors.ReproError) or item is errors.ReproError


def test_version_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2
