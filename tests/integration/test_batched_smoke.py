"""Tier-1 smoke: batched execution is at least as fast as scalar.

A 20k-element run is long enough for interpreter-loop overhead to dominate
and the bulk paths to win decisively (E18 measures ~2-6x; this gate only
asserts "no slower" so scheduler noise cannot flake it), while staying
fast enough for the default test suite.
"""

from __future__ import annotations

import numpy as np

from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import MeanAggregate
from repro.engine.handlers import KSlackHandler
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.generators import generate_stream


def test_batched_throughput_not_slower_than_scalar():
    rng = np.random.default_rng(11)
    stream = inject_disorder(
        generate_stream(duration=200.0, rate=100.0, rng=rng),
        ExponentialDelay(0.4),
        rng,
    )
    assert len(stream) >= 15_000

    def make_operator():
        return WindowAggregateOperator(
            SlidingWindowAssigner(10.0, 1.0),
            MeanAggregate(),
            KSlackHandler(1.0),
            track_feedback=False,
        )

    def best_eps(batch_size):
        best = None
        for __ in range(2):
            out = run_pipeline(stream, make_operator(), batch_size=batch_size)
            if best is None or out.metrics.throughput_eps > best.metrics.throughput_eps:
                best = out
        return best

    scalar = best_eps(0)
    batched = best_eps(512)

    scalar_map = {(r.key, r.window): round(r.value, 9) for r in scalar.results}
    batched_map = {(r.key, r.window): round(r.value, 9) for r in batched.results}
    assert scalar_map == batched_map
    assert len(scalar.results) == len(batched.results)
    assert batched.metrics.throughput_eps >= scalar.metrics.throughput_eps
