"""Smoke tests: every example script runs end-to-end at reduced duration."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name,expected_snippets",
    [
        ("quickstart", ["policy", "quality-driven"]),
        ("financial_monitoring", ["mean relative error", "average price per symbol"]),
        ("sensor_outage", ["adaptive slack", "outage"]),
        (
            "latency_budget_leaderboard",
            ["latency budget", "top speed"],
        ),
        (
            "multi_gateway_operations",
            ["checkpointed after", "results identical to uninterrupted run: True"],
        ),
    ],
)
def test_example_runs(name, expected_snippets, capsys):
    module = load_example(name)
    module.main(duration=40.0)
    out = capsys.readouterr().out
    for snippet in expected_snippets:
        assert snippet in out, f"{name}: missing {snippet!r}"


def test_all_examples_covered():
    scripts = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    tested = {
        "quickstart",
        "financial_monitoring",
        "sensor_outage",
        "latency_budget_leaderboard",
        "multi_gateway_operations",
    }
    assert scripts == tested
