"""Failure injection: adversarial streams must not break invariants.

These streams are deliberately pathological — fully reversed arrival,
duplicate timestamps, giant event-time gaps, all-late singletons, constant
values, extreme rates.  The assertions are the engine's safety net:
no exceptions, exactly-once release, monotone frontiers, sane reports.
"""

import math

import numpy as np
import pytest

from repro.core.aqk import AQKSlackHandler
from repro.core.quality import assess_quality
from repro.core.spec import QualityTarget
from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import CountAggregate, MeanAggregate
from repro.engine.handlers import KSlackHandler, MPKSlackHandler, NoBufferHandler
from repro.engine.oracle import oracle_results
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.streams.element import StreamElement

ASSIGNER = SlidingWindowAssigner(10, 2)


def handlers():
    return [
        NoBufferHandler(),
        KSlackHandler(1.0),
        MPKSlackHandler(),
        AQKSlackHandler(target=QualityTarget(0.05), aggregate=CountAggregate()),
    ]


def run_all_handlers(stream):
    outputs = []
    for handler in handlers():
        operator = WindowAggregateOperator(ASSIGNER, MeanAggregate(), handler)
        outputs.append((handler, run_pipeline(stream, operator)))
    return outputs


def check_sanity(stream, outputs):
    truth = oracle_results(stream, ASSIGNER, MeanAggregate())
    for handler, output in outputs:
        # Results are a subset of oracle windows with sane counts.
        for result in output.results:
            assert (result.key, result.window) in truth
            assert result.count >= 1
            if not result.flushed:
                assert result.latency >= -1e-9
        # Quality report computes without blowing up.
        report = assess_quality(output.results, truth, threshold=0.5)
        assert 0.0 <= report.window_recall <= 1.0


class TestAdversarialStreams:
    def test_fully_reversed_arrival(self):
        """Events arrive in exactly reversed event-time order."""
        n = 200
        stream = [
            StreamElement(
                event_time=float(n - i),
                value=1.0,
                arrival_time=float(n + i),
                seq=n - i,
            )
            for i in range(n)
        ]
        outputs = run_all_handlers(stream)
        check_sanity(stream, outputs)
        # The first-arriving element has the largest event time, so for
        # zero-slack handling everything else is late.
        no_buffer_output = outputs[0][1]
        assert no_buffer_output.metrics.late_dropped > n / 2

    def test_all_elements_share_one_timestamp(self):
        stream = [
            StreamElement(event_time=5.0, value=float(i), arrival_time=5.0 + i * 0.01, seq=i)
            for i in range(100)
        ]
        outputs = run_all_handlers(stream)
        check_sanity(stream, outputs)

    def test_giant_event_time_gap(self):
        """An hour of silence between two busy patches."""
        early = [
            StreamElement(event_time=i * 0.1, value=1.0, arrival_time=i * 0.1, seq=i)
            for i in range(100)
        ]
        late = [
            StreamElement(
                event_time=3600.0 + i * 0.1,
                value=1.0,
                arrival_time=3600.0 + i * 0.1,
                seq=100 + i,
            )
            for i in range(100)
        ]
        stream = early + late
        outputs = run_all_handlers(stream)
        check_sanity(stream, outputs)
        # The gap must not create phantom windows: every emitted window is
        # in one of the two busy patches.
        for __, output in outputs:
            for result in output.results:
                assert result.window.start < 20 or result.window.start > 3500

    def test_single_element_stream(self):
        stream = [StreamElement(event_time=1.0, value=7.0, arrival_time=1.5, seq=0)]
        for handler in handlers():
            operator = WindowAggregateOperator(ASSIGNER, MeanAggregate(), handler)
            output = run_pipeline(stream, operator)
            assert len(output.results) >= 1
            assert all(r.flushed for r in output.results)
            assert all(r.value == 7.0 for r in output.results)

    def test_two_elements_hours_of_delay_apart(self):
        stream = [
            StreamElement(event_time=100.0, value=1.0, arrival_time=100.0, seq=1),
            StreamElement(event_time=0.0, value=1.0, arrival_time=7200.0, seq=0),
        ]
        outputs = run_all_handlers(stream)
        check_sanity(stream, outputs)

    def test_constant_zero_values(self):
        """Zero mean stresses the relative-error denominators."""
        stream = [
            StreamElement(event_time=i * 0.1, value=0.0, arrival_time=i * 0.1 + 0.05, seq=i)
            for i in range(300)
        ]
        outputs = run_all_handlers(stream)
        truth = oracle_results(stream, ASSIGNER, MeanAggregate())
        for __, output in outputs:
            report = assess_quality(output.results, truth, threshold=0.05)
            assert not math.isnan(report.mean_error)

    def test_extreme_value_magnitudes(self):
        rng = np.random.default_rng(0)
        stream = [
            StreamElement(
                event_time=i * 0.05,
                value=float(rng.choice([1e-12, 1e12, -1e12])),
                arrival_time=i * 0.05 + float(rng.exponential(0.3)),
                seq=i,
            )
            for i in range(400)
        ]
        stream.sort(key=StreamElement.arrival_sort_key)
        outputs = run_all_handlers(stream)
        check_sanity(stream, outputs)

    def test_empty_stream_all_handlers(self):
        for handler in handlers():
            operator = WindowAggregateOperator(ASSIGNER, MeanAggregate(), handler)
            output = run_pipeline([], operator)
            assert output.results == []

    def test_aqk_survives_burst_of_identical_delays(self):
        """Degenerate delay distribution: every quantile is the same."""
        stream = [
            StreamElement(event_time=i * 0.1, value=1.0, arrival_time=i * 0.1 + 2.0, seq=i)
            for i in range(500)
        ]
        handler = AQKSlackHandler(target=QualityTarget(0.05), aggregate=CountAggregate())
        operator = WindowAggregateOperator(ASSIGNER, CountAggregate(), handler)
        output = run_pipeline(stream, operator)
        truth = oracle_results(stream, ASSIGNER, CountAggregate())
        report = assess_quality(output.results, truth, threshold=0.05)
        # Constant delays create zero disorder: results must be exact.
        assert report.mean_error == 0.0
