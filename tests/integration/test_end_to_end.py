"""Integration tests: the paper's headline claims as executable assertions.

These are slower, whole-system tests that exercise the public API end to
end and check the *shape* of the reproduced results:

1. without disorder every policy is exact;
2. quality-driven adaptation meets its target at a fraction of the
   conservative baseline's latency;
3. the latency-budget mode respects its bound and beats fixed conservative
   buffering on latency;
4. adaptation follows a delay burst up and back down.
"""

import numpy as np
import pytest

from repro.core.quality import assess_quality
from repro.engine.aggregates import CountAggregate
from repro.engine.oracle import oracle_results
from repro.engine.retraction import SpeculativeAggregateOperator, final_values
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner, sliding
from repro.queries.language import ContinuousQuery
from repro.streams.delay import (
    BurstyDelay,
    ConstantDelay,
    ExponentialDelay,
    MixtureDelay,
    ParetoDelay,
)
from repro.streams.disorder import inject_disorder
from repro.streams.generators import generate_stream


@pytest.fixture(scope="module")
def heavy_stream():
    rng = np.random.default_rng(99)
    model = MixtureDelay(
        [(0.9, ExponentialDelay(0.2)), (0.1, ParetoDelay(shape=1.8, scale=1.0))]
    )
    return inject_disorder(
        generate_stream(duration=240, rate=100, rng=rng), model, rng
    )


def run_with(stream, clause, **kwargs):
    query = (
        ContinuousQuery()
        .from_elements(stream)
        .window(sliding(10, 2))
        .aggregate("count")
    )
    query = getattr(query, clause)(**kwargs)
    return query.run(assess=True, threshold=0.05)


class TestExactnessWithoutDisorder:
    @pytest.mark.parametrize(
        "clause,kwargs",
        [
            ("without_buffering", {}),
            ("with_slack", {"k": 1.0}),
            ("with_max_delay_slack", {}),
            ("with_watermark", {"lag": 0.5}),
        ],
    )
    def test_every_policy_exact_in_order(self, clause, kwargs):
        rng = np.random.default_rng(3)
        stream = inject_disorder(
            generate_stream(duration=60, rate=50, rng=rng), ConstantDelay(0.05), rng
        )
        run = run_with(stream, clause, **kwargs)
        assert run.report.mean_error == 0.0
        assert run.report.window_recall == 1.0


class TestHeadlineTradeoff:
    def test_quality_met_at_fraction_of_conservative_latency(self, heavy_stream):
        adaptive = run_with(heavy_stream, "with_quality", threshold=0.05)
        conservative = run_with(heavy_stream, "with_max_delay_slack")

        # The adaptive run meets the quality target...
        assert adaptive.report.mean_error <= 0.05
        # ...at a small fraction of the conservative latency.
        assert adaptive.latency.mean < conservative.latency.mean / 3
        # The conservative baseline is (as designed) near-exact.
        assert conservative.report.mean_error <= 0.001

    def test_no_buffer_is_fast_but_violates_strict_targets(self, heavy_stream):
        eager = run_with(heavy_stream, "without_buffering")
        adaptive = run_with(heavy_stream, "with_quality", threshold=0.01)
        assert eager.latency.mean < adaptive.latency.mean
        assert eager.report.mean_error > 0.01
        assert adaptive.report.mean_error <= 0.015  # small tolerance

    def test_latency_monotone_in_quality_strictness(self, heavy_stream):
        strict = run_with(heavy_stream, "with_quality", threshold=0.01)
        loose = run_with(heavy_stream, "with_quality", threshold=0.2)
        assert loose.latency.mean <= strict.latency.mean


class TestLatencyBudgetMode:
    def test_budget_respected(self, heavy_stream):
        run = run_with(heavy_stream, "with_latency_budget", seconds=1.0)
        assert run.handler.current_slack <= 1.0
        for record in run.handler.adaptations:
            assert record.k_applied <= 1.0

    def test_larger_budget_means_better_quality(self, heavy_stream):
        small = run_with(heavy_stream, "with_latency_budget", seconds=0.1)
        large = run_with(heavy_stream, "with_latency_budget", seconds=8.0)
        assert large.report.mean_error <= small.report.mean_error


class TestBurstAdaptation:
    def test_slack_follows_burst_up_and_down(self):
        rng = np.random.default_rng(17)
        model = BurstyDelay(
            calm=ExponentialDelay(0.1),
            burst=ExponentialDelay(3.0),
            burst_start=100.0,
            burst_end=200.0,
        )
        stream = inject_disorder(
            generate_stream(duration=300, rate=100, rng=rng), model, rng
        )
        run = (
            ContinuousQuery()
            .from_elements(stream)
            .window(sliding(10, 2))
            .aggregate("count")
            .with_quality(0.05)
            .run()
        )
        records = run.handler.adaptations
        calm_before = [r.k_applied for r in records if r.arrival_time < 90]
        in_burst = [r.k_applied for r in records if 130 < r.arrival_time < 200]
        calm_after = [r.k_applied for r in records if r.arrival_time > 280]
        assert np.median(in_burst) > 3 * np.median(calm_before)
        assert np.median(calm_after) < np.median(in_burst)


class TestSpeculativeVsBuffered:
    def test_speculation_trades_revisions_for_latency(self, heavy_stream):
        assigner = SlidingWindowAssigner(10, 2)
        aggregate = CountAggregate()
        speculative = SpeculativeAggregateOperator(
            assigner, aggregate, revision_horizon=60.0
        )
        output = run_pipeline(heavy_stream, speculative)
        truth = oracle_results(heavy_stream, assigner, aggregate)
        finals = final_values(output.results)
        report = assess_quality(
            [r for r in output.results], truth, threshold=0.05
        )
        # Final values are much better than the initial (revision-0) ones
        # would be alone, but the price is revision churn.
        assert speculative.revisions_emitted > 0
        assert report.window_recall == 1.0
        assert len(finals) == len(truth)
