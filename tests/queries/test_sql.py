"""Tests for the SQL-like continuous-query dialect."""

import pytest

from repro.core.aqk import AQKSlackHandler
from repro.core.spec import LatencyBudget, QualityTarget
from repro.engine.aggregates import (
    CountAggregate,
    MeanAggregate,
    QuantileAggregate,
)
from repro.engine.handlers import KSlackHandler, MPKSlackHandler, NoBufferHandler
from repro.engine.watermarks import FixedLagWatermarkHandler
from repro.engine.windows import SlidingWindowAssigner, TumblingWindowAssigner
from repro.errors import QueryError
from repro.queries.sql import parse_query


def built(text):
    """Parse and materialize the operator for inspection."""
    query = parse_query(text)
    return query, query.build_operator()


class TestParsing:
    def test_minimal_query(self):
        query, operator = built(
            "SELECT mean(value) FROM stream GROUP BY HOP(10, 2) WITH QUALITY 0.05"
        )
        assert isinstance(operator.aggregate, MeanAggregate)
        assert isinstance(operator.assigner, SlidingWindowAssigner)
        assert operator.assigner.size == 10
        assert operator.assigner.slide == 2
        assert isinstance(operator.handler, AQKSlackHandler)
        assert operator.handler.target == QualityTarget(0.05)

    def test_case_insensitive_keywords(self):
        __, operator = built(
            "select count(*) from s group by tumble(5) with slack 1.5"
        )
        assert isinstance(operator.aggregate, CountAggregate)
        assert isinstance(operator.assigner, TumblingWindowAssigner)
        assert isinstance(operator.handler, KSlackHandler)
        assert operator.handler.k == 1.5

    def test_aggregate_without_parens(self):
        __, operator = built(
            "SELECT median FROM s GROUP BY TUMBLE(5) WITH SLACK 1"
        )
        assert operator.aggregate.name == "median"

    def test_quantile_aggregate(self):
        __, operator = built(
            "SELECT p95(value) FROM s GROUP BY HOP(10, 5) WITH SLACK 1"
        )
        assert isinstance(operator.aggregate, QuantileAggregate)
        assert operator.aggregate.q == pytest.approx(0.95)

    def test_latency_budget(self):
        __, operator = built(
            "SELECT count(*) FROM s GROUP BY HOP(10, 2) WITH LATENCY BUDGET 2.5"
        )
        assert operator.handler.target == LatencyBudget(2.5)

    def test_max_delay_slack(self):
        __, operator = built(
            "SELECT sum(value) FROM s GROUP BY TUMBLE(5) WITH MAX DELAY SLACK"
        )
        assert isinstance(operator.handler, MPKSlackHandler)

    def test_watermark_lag(self):
        __, operator = built(
            "SELECT sum(value) FROM s GROUP BY TUMBLE(5) WITH WATERMARK LAG 1.0"
        )
        assert isinstance(operator.handler, FixedLagWatermarkHandler)
        assert operator.handler.lag == 1.0

    @pytest.mark.parametrize(
        "clause", ["WITH NO BUFFERING", "WITHOUT BUFFERING"]
    )
    def test_no_buffering(self, clause):
        __, operator = built(
            f"SELECT sum(value) FROM s GROUP BY TUMBLE(5) {clause}"
        )
        assert isinstance(operator.handler, NoBufferHandler)

    def test_fractional_numbers(self):
        __, operator = built(
            "SELECT mean(value) FROM s GROUP BY HOP(0.5, 0.25) WITH QUALITY .01"
        )
        assert operator.assigner.size == 0.5
        assert operator.handler.target.threshold == 0.01


class TestErrors:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("", "SELECT"),
            ("SELECT FROM s GROUP BY TUMBLE(5)", "aggregate name"),
            ("SELECT bogus(value) FROM s GROUP BY TUMBLE(5)", "unknown aggregate"),
            ("SELECT mean(value) GROUP BY TUMBLE(5)", "FROM"),
            ("SELECT mean(value) FROM s", "GROUP"),
            ("SELECT mean(value) FROM s GROUP BY SESSION(5)", "HOP or TUMBLE"),
            ("SELECT mean(value) FROM s GROUP BY HOP(10)", "','"),
            ("SELECT mean(value) FROM s GROUP BY HOP(2, 10)", "slide"),
            ("SELECT mean(value) FROM s GROUP BY TUMBLE(5) WITH QUALITY 2.0", "threshold"),
            ("SELECT mean(value) FROM s GROUP BY TUMBLE(5) WITH QUALITY", "a number"),
            ("SELECT mean(value) FROM s GROUP BY TUMBLE(5) trailing", "end of query"),
            ("SELECT mean(price) FROM s GROUP BY TUMBLE(5)", "'value' or '*'"),
        ],
    )
    def test_bad_queries_fail_with_context(self, text, fragment):
        with pytest.raises(QueryError) as excinfo:
            parse_query(text).build_operator()
        assert fragment.lower() in str(excinfo.value).lower()

    def test_unexpected_character(self):
        with pytest.raises(QueryError):
            parse_query("SELECT mean(value) FROM s GROUP BY TUMBLE(5) WITH QUALITY 5%")

    def test_no_handler_clause_requires_explicit_choice(self):
        query = parse_query("SELECT mean(value) FROM s GROUP BY TUMBLE(5)")
        with pytest.raises(QueryError):
            query.build_operator()
        # Caller can complete the query fluently.
        query.without_buffering()
        assert query.build_operator() is not None


class TestEndToEnd:
    def test_sql_query_runs(self, small_disordered_stream):
        run = (
            parse_query(
                "SELECT count(*) FROM stream GROUP BY HOP(5, 1) WITH QUALITY 0.1"
            )
            .from_elements(small_disordered_stream)
            .run(assess=True)
        )
        assert run.results
        assert run.report.threshold == 0.1

    def test_sql_equals_fluent(self, small_disordered_stream):
        from repro.engine.windows import sliding
        from repro.queries.language import ContinuousQuery

        sql_run = (
            parse_query(
                "SELECT mean(value) FROM s GROUP BY HOP(5, 1) WITH SLACK 1.0"
            )
            .from_elements(small_disordered_stream)
            .run()
        )
        fluent_run = (
            ContinuousQuery()
            .from_elements(small_disordered_stream)
            .window(sliding(5, 1))
            .aggregate("mean")
            .with_slack(1.0)
            .run()
        )
        assert {(r.key, r.window): r.value for r in sql_run.results} == {
            (r.key, r.window): r.value for r in fluent_run.results
        }
