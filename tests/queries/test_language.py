"""Tests for the fluent query API."""

import pytest

from repro.core.aqk import AQKSlackHandler
from repro.engine.handlers import (
    KSlackHandler,
    MPKSlackHandler,
    NoBufferHandler,
)
from repro.engine.watermarks import FixedLagWatermarkHandler
from repro.engine.windows import sliding, tumbling
from repro.errors import QueryError
from repro.queries.language import ContinuousQuery


def base_query(stream):
    return (
        ContinuousQuery()
        .from_elements(stream)
        .window(sliding(5, 1))
        .aggregate("mean")
    )


class TestBuilderValidation:
    def test_missing_source(self):
        query = ContinuousQuery().window(sliding(5, 1)).aggregate("mean")
        query.without_buffering()
        with pytest.raises(QueryError):
            query.run()

    def test_missing_window(self, small_disordered_stream):
        query = (
            ContinuousQuery()
            .from_elements(small_disordered_stream)
            .aggregate("mean")
            .without_buffering()
        )
        with pytest.raises(QueryError):
            query.run()

    def test_missing_aggregate(self, small_disordered_stream):
        query = (
            ContinuousQuery()
            .from_elements(small_disordered_stream)
            .window(sliding(5, 1))
            .without_buffering()
        )
        with pytest.raises(QueryError):
            query.run()

    def test_missing_handler(self, small_disordered_stream):
        with pytest.raises(QueryError):
            base_query(small_disordered_stream).run()

    def test_double_handler_rejected(self, small_disordered_stream):
        query = base_query(small_disordered_stream).without_buffering()
        with pytest.raises(QueryError):
            query.with_slack(1.0)


class TestHandlerClauses:
    def test_with_quality(self, small_disordered_stream):
        run = base_query(small_disordered_stream).with_quality(0.05).run()
        assert isinstance(run.handler, AQKSlackHandler)
        assert run.results

    def test_with_latency_budget(self, small_disordered_stream):
        run = base_query(small_disordered_stream).with_latency_budget(1.0).run()
        assert isinstance(run.handler, AQKSlackHandler)
        assert run.handler.current_slack <= 1.0

    def test_with_slack(self, small_disordered_stream):
        run = base_query(small_disordered_stream).with_slack(1.5).run()
        assert isinstance(run.handler, KSlackHandler)
        assert run.handler.k == 1.5

    def test_with_max_delay_slack(self, small_disordered_stream):
        run = base_query(small_disordered_stream).with_max_delay_slack().run()
        assert isinstance(run.handler, MPKSlackHandler)

    def test_with_watermark(self, small_disordered_stream):
        run = base_query(small_disordered_stream).with_watermark(lag=1.0).run()
        assert isinstance(run.handler, FixedLagWatermarkHandler)

    def test_without_buffering(self, small_disordered_stream):
        run = base_query(small_disordered_stream).without_buffering().run()
        assert isinstance(run.handler, NoBufferHandler)

    def test_with_external_handler(self, small_disordered_stream):
        handler = KSlackHandler(0.7)
        run = base_query(small_disordered_stream).with_handler(handler).run()
        assert run.handler is handler


class TestRunResults:
    def test_assess_attaches_report(self, small_disordered_stream):
        run = base_query(small_disordered_stream).with_quality(0.05).run(assess=True)
        assert run.report is not None
        assert run.report.threshold == 0.05
        assert run.report.n_oracle_windows > 0

    def test_no_report_by_default(self, small_disordered_stream):
        run = base_query(small_disordered_stream).with_quality(0.05).run()
        assert run.report is None

    def test_explicit_threshold_overrides(self, small_disordered_stream):
        run = (
            base_query(small_disordered_stream)
            .with_slack(1.0)
            .run(assess=True, threshold=0.1)
        )
        assert run.report.threshold == 0.1

    def test_latency_summary_shortcut(self, small_disordered_stream):
        run = base_query(small_disordered_stream).with_slack(1.0).run()
        assert run.latency.count > 0
        assert run.latency.mean >= 0.0

    def test_sampling_timeline(self, small_disordered_stream):
        run = (
            base_query(small_disordered_stream)
            .with_slack(1.0)
            .sampling_timeline(50)
            .run()
        )
        assert run.output.metrics.slack_timeline

    def test_aggregate_instance_accepted(self, small_disordered_stream):
        from repro.engine.aggregates import MaxAggregate

        run = (
            ContinuousQuery()
            .from_elements(small_disordered_stream)
            .window(tumbling(5))
            .aggregate(MaxAggregate())
            .without_buffering()
            .run()
        )
        assert run.results

    def test_quality_clause_passes_kwargs(self, small_disordered_stream):
        run = (
            base_query(small_disordered_stream)
            .with_quality(0.05, k_max=0.5, adapt_interval=0.25)
            .run()
        )
        assert run.handler.k_max == 0.5
        assert run.handler.adapt_interval == 0.25


class TestSlicedExecution:
    def test_sliced_matches_default(self, small_disordered_stream):
        default = base_query(small_disordered_stream).with_slack(1.0).run()
        from repro.queries.language import ContinuousQuery
        from repro.engine.windows import sliding as sliding_ctor

        sliced = (
            ContinuousQuery()
            .from_elements(small_disordered_stream)
            .window(sliding_ctor(5, 1))
            .aggregate("mean")
            .with_slack(1.0)
            .sliced()
            .run()
        )
        default_map = {(r.key, r.window): r.value for r in default.results}
        sliced_map = {(r.key, r.window): r.value for r in sliced.results}
        assert set(default_map) == set(sliced_map)
        for slot, value in default_map.items():
            assert sliced_map[slot] == pytest.approx(value)

    def test_sliced_operator_type(self, small_disordered_stream):
        from repro.engine.sliced_op import SlicedWindowAggregateOperator

        run = (
            base_query(small_disordered_stream).with_slack(1.0).sliced().run()
        )
        assert isinstance(run.operator, SlicedWindowAggregateOperator)

    def test_sliced_with_quality_target(self, small_disordered_stream):
        run = (
            base_query(small_disordered_stream)
            .with_quality(0.1)
            .sliced()
            .run(assess=True)
        )
        assert run.report.mean_error < 0.5


class TestBoundedQualityClause:
    def test_with_bounded_quality(self, small_disordered_stream):
        from repro.core.spec import BoundedQualityTarget

        run = (
            base_query(small_disordered_stream)
            .with_bounded_quality(0.05, budget=1.0)
            .run(assess=True)
        )
        assert isinstance(run.handler.target, BoundedQualityTarget)
        assert run.handler.current_slack <= 1.0
        assert run.report is not None


class TestShardedExecution:
    def test_shards_matches_unsharded_values(self, small_disordered_stream):
        # The fixture stream is unkeyed (round-robin routing), so use a
        # slack under which nothing is late: with late drops a sharded
        # run may legitimately keep elements the unsharded run dropped.
        k = (
            max(
                e.arrival_time - e.event_time
                for e in small_disordered_stream
            )
            + 1e-6
        )
        base = base_query(small_disordered_stream).with_slack(k).run()
        sharded = (
            base_query(small_disordered_stream)
            .with_slack(k)
            .shards(3)
            .run()
        )
        base_map = {(r.key, r.window): r.value for r in base.results}
        sharded_map = {(r.key, r.window): r.value for r in sharded.results}
        assert set(base_map) == set(sharded_map)
        for slot, value in base_map.items():
            assert sharded_map[slot] == pytest.approx(value, rel=1e-9)

    def test_shards_builds_sharded_operator(self, small_disordered_stream):
        from repro.engine.parallel import ShardedWindowOperator

        run = (
            base_query(small_disordered_stream)
            .with_slack(1.0)
            .shards(2)
            .mode("tree")
            .run()
        )
        assert isinstance(run.operator, ShardedWindowOperator)
        assert run.handler.describe().startswith("sharded(2)x")

    def test_shards_with_custom_key(self, small_disordered_stream):
        run = (
            base_query(small_disordered_stream)
            .with_slack(1.0)
            .shards(4, key=lambda e: int(e.event_time) % 4)
            .run()
        )
        assert run.results

    @pytest.mark.parametrize("bad", [0, -2, 1.5, "four", True])
    def test_invalid_shard_count_rejected(self, bad):
        with pytest.raises(QueryError):
            ContinuousQuery().shards(bad)

    def test_handler_instance_cannot_be_sharded(self, small_disordered_stream):
        query = (
            base_query(small_disordered_stream)
            .with_handler(KSlackHandler(1.0))
            .shards(2)
        )
        with pytest.raises(QueryError, match="fresh handler per shard"):
            query.run()

    def test_handler_instance_allows_single_shard(self, small_disordered_stream):
        run = (
            base_query(small_disordered_stream)
            .with_handler(KSlackHandler(1.0))
            .shards(1)
            .run()
        )
        assert run.results

    def test_shards_with_quality_clause(self, small_disordered_stream):
        run = (
            base_query(small_disordered_stream)
            .with_quality(0.1)
            .shards(2)
            .run(assess=True)
        )
        assert run.report is not None
        assert run.report.mean_error < 0.5
