"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_delay_model
from repro.errors import ConfigurationError
from repro.streams.delay import (
    ConstantDelay,
    ExponentialDelay,
    LognormalDelay,
    MixtureDelay,
    ParetoDelay,
    UniformDelay,
)
from repro.streams.io import read_trace


class TestParseDelayModel:
    @pytest.mark.parametrize(
        "spec,cls",
        [
            ("const:0.5", ConstantDelay),
            ("uniform:0.1,0.9", UniformDelay),
            ("exp:0.4", ExponentialDelay),
            ("pareto:1.8,1.0", ParetoDelay),
            ("lognormal:-1.0,0.8", LognormalDelay),
            ("mix:0.9*exp:0.2|0.1*pareto:1.8,1.0", MixtureDelay),
        ],
    )
    def test_known_specs(self, spec, cls):
        assert isinstance(parse_delay_model(spec), cls)

    def test_parameters_applied(self):
        model = parse_delay_model("const:0.75")
        assert model.delay == 0.75

    def test_mixture_weights(self):
        model = parse_delay_model("mix:3*const:0.1|1*const:0.5")
        assert model.mean() == pytest.approx(0.2)

    @pytest.mark.parametrize(
        "spec", ["bogus:1", "exp:", "uniform:1", "pareto:abc,1", "mix:1*bogus:2"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_delay_model(spec)


class TestGenerateCommand:
    def test_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        code = main(
            [
                "generate",
                "--duration", "10",
                "--rate", "20",
                "--delay", "exp:0.3",
                "--out", str(out),
            ]
        )
        assert code == 0
        trace = read_trace(out)
        assert len(trace) > 100
        assert all(el.arrival_time is not None for el in trace)
        assert "wrote" in capsys.readouterr().out

    def test_keys_applied(self, tmp_path):
        out = tmp_path / "trace.csv"
        main(
            [
                "generate",
                "--duration", "10",
                "--rate", "50",
                "--keys", "a,b",
                "--out", str(out),
            ]
        )
        assert {el.key for el in read_trace(out)} == {"a", "b"}

    def test_deterministic_seed(self, tmp_path):
        out1, out2 = tmp_path / "t1.csv", tmp_path / "t2.csv"
        for out in (out1, out2):
            main(
                ["generate", "--duration", "5", "--rate", "10",
                 "--seed", "9", "--out", str(out)]
            )
        assert out1.read_text() == out2.read_text()


class TestRunCommand:
    @pytest.fixture
    def trace(self, tmp_path):
        out = tmp_path / "trace.csv"
        main(
            ["generate", "--duration", "30", "--rate", "40",
             "--delay", "exp:0.5", "--out", str(out)]
        )
        return str(out)

    def test_quality_mode(self, trace, capsys):
        code = main(
            ["run", trace, "--window", "5", "--slide", "1",
             "--aggregate", "count", "--quality", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean error" in out
        assert "aq-k-slack" in out

    def test_fixed_slack_mode(self, trace, capsys):
        code = main(
            ["run", trace, "--window", "5", "--slide", "1", "--slack", "1.0"]
        )
        assert code == 0
        assert "k-slack" in capsys.readouterr().out

    def test_default_is_no_buffer(self, trace, capsys):
        main(["run", trace, "--window", "5", "--slide", "1"])
        assert "no-buffer" in capsys.readouterr().out

    def test_no_assess_skips_oracle(self, trace, capsys):
        main(["run", trace, "--window", "5", "--slide", "1", "--no-assess"])
        assert "mean error" not in capsys.readouterr().out

    def test_show_results(self, trace, capsys):
        main(
            ["run", trace, "--window", "5", "--slide", "1",
             "--show-results", "3"]
        )
        out = capsys.readouterr().out
        assert out.count("lat=") == 3

    def test_sharded_run(self, trace, capsys):
        code = main(
            ["run", trace, "--window", "5", "--slide", "1",
             "--slack", "1.0", "--mode", "tree", "--shards", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sharded(4)x" in out
        assert "results" in out

    def test_sharded_matches_unsharded_counts(self, trace, capsys):
        args = ["run", trace, "--window", "5", "--slide", "1",
                "--slack", "30.0", "--aggregate", "count", "--no-assess"]
        main(args)
        base = capsys.readouterr().out
        main(args + ["--shards", "4"])
        sharded = capsys.readouterr().out
        line = next(l for l in base.splitlines() if l.startswith("results"))
        assert line in sharded

    def test_invalid_shard_count_is_error(self, trace, capsys):
        code = main(
            ["run", trace, "--window", "5", "--slide", "1", "--shards", "-3"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_trace_is_error(self, tmp_path, capsys):
        code = main(
            ["run", str(tmp_path / "absent.csv"), "--window", "5", "--slide", "1"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_without_arrivals_is_error(self, tmp_path, rng, capsys):
        from repro.streams.generators import generate_stream
        from repro.streams.io import write_trace

        path = tmp_path / "inorder.csv"
        write_trace(path, generate_stream(duration=5, rate=10, rng=rng))
        code = main(["run", str(path), "--window", "5", "--slide", "1"])
        assert code == 2


class TestExperimentCommand:
    def test_runs_named_experiment(self, capsys):
        code = main(["experiment", "E8", "--scale", "0.05"])
        assert code == 0
        assert "E8:" in capsys.readouterr().out

    def test_unknown_experiment_is_error(self, capsys):
        code = main(["experiment", "E99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestExperimentExport:
    def test_out_dir_writes_csv_and_json(self, tmp_path, capsys):
        code = main(
            ["experiment", "E8", "--scale", "0.05", "--out-dir", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "e8.csv").exists()
        assert (tmp_path / "e8.json").exists()
        assert "exported" in capsys.readouterr().out


class TestQueryCommand:
    @pytest.fixture
    def trace(self, tmp_path):
        out = tmp_path / "trace.csv"
        main(
            ["generate", "--duration", "30", "--rate", "40",
             "--delay", "exp:0.5", "--out", str(out)]
        )
        return str(out)

    def test_sql_query_runs(self, trace, capsys):
        code = main(
            ["query", trace,
             "SELECT count(*) FROM stream GROUP BY HOP(5, 1) WITH QUALITY 0.1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean error" in out
        assert "aq-k-slack" in out

    def test_sliced_flag(self, trace, capsys):
        code = main(
            ["query", trace, "--sliced",
             "SELECT mean(value) FROM stream GROUP BY HOP(10, 2) WITH SLACK 1"]
        )
        assert code == 0

    def test_bad_sql_is_error(self, trace, capsys):
        code = main(["query", trace, "SELECT bogus FROM"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
