"""Smoke tests for every experiment definition at tiny scale.

The benchmark suite checks result *shapes* at moderate scale; these tests
only assert that each experiment builds a well-formed table quickly, so a
broken experiment fails in the unit suite and not first in a long benchmark
run.
"""

import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.report import ExperimentResult, render_table
from repro.errors import ExperimentError

TINY = 0.04


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_builds_table(experiment_id):
    result = run_experiment(experiment_id, scale=TINY)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.rows, experiment_id
    for row in result.rows:
        for column in result.columns:
            assert column in row
    # Renders without raising and includes the id.
    assert experiment_id in render_table(result)


def test_lowercase_id_accepted():
    result = run_experiment("e8", scale=TINY)
    assert result.experiment_id == "E8"


def test_unknown_id_rejected():
    with pytest.raises(ExperimentError):
        run_experiment("E99")


def test_main_renders_selected(capsys):
    from repro.bench.experiments import main

    assert main(["E8", "--scale", str(TINY)]) == 0
    out = capsys.readouterr().out
    assert "E8:" in out
