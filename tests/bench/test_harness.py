"""Tests for the experiment harness plumbing."""

import pytest

from repro.bench.harness import (
    WorkloadSpec,
    default_delay_model,
    make_policy,
    run_policy,
    standard_query,
    sweep,
    workload_summary,
)
from repro.core.aqk import AQKSlackHandler
from repro.core.spec import LatencyBudget, QualityTarget
from repro.engine.aggregates import make_aggregate
from repro.engine.handlers import KSlackHandler, MPKSlackHandler, NoBufferHandler
from repro.engine.watermarks import HeuristicWatermarkHandler
from repro.errors import ExperimentError


class TestWorkloadSpec:
    def test_build_is_deterministic(self):
        spec = WorkloadSpec(duration=10, rate=20, seed=5)
        assert spec.build() == spec.build()

    def test_different_seeds_differ(self):
        a = WorkloadSpec(duration=10, rate=20, seed=5).build()
        b = WorkloadSpec(duration=10, rate=20, seed=6).build()
        assert a != b

    def test_scaled_shrinks_duration(self):
        spec = WorkloadSpec(duration=100, rate=20).scaled(0.1)
        assert spec.duration == pytest.approx(10.0)
        stream = spec.build()
        assert max(el.event_time for el in stream) < 10.0

    def test_scaled_keeps_other_fields(self):
        spec = WorkloadSpec(duration=100, rate=20, seed=9).scaled(0.5)
        assert spec.rate == 20
        assert spec.seed == 9

    def test_bad_scale_rejected(self):
        with pytest.raises(ExperimentError):
            WorkloadSpec().scaled(0.0)

    def test_arrival_ordered_output(self):
        stream = WorkloadSpec(duration=10, rate=20).build()
        arrivals = [el.arrival_time for el in stream]
        assert arrivals == sorted(arrivals)


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name,params,cls",
        [
            ("no-buffer", {}, NoBufferHandler),
            ("k-slack", {"k": 1.0}, KSlackHandler),
            ("mp-k-slack", {}, MPKSlackHandler),
            ("watermark-heuristic", {}, HeuristicWatermarkHandler),
            ("aq-k", {"theta": 0.05}, AQKSlackHandler),
            ("aq-k-budget", {"budget": 1.0}, AQKSlackHandler),
        ],
    )
    def test_known_policies(self, name, params, cls):
        handler = make_policy(name, make_aggregate("count"), 10.0, **params)
        assert isinstance(handler, cls)

    def test_aqk_modes(self):
        quality = make_policy("aq-k", make_aggregate("count"), 10.0, theta=0.05)
        budget = make_policy("aq-k-budget", make_aggregate("count"), 10.0, budget=2.0)
        assert isinstance(quality.target, QualityTarget)
        assert isinstance(budget.target, LatencyBudget)

    def test_unknown_rejected(self):
        with pytest.raises(ExperimentError):
            make_policy("bogus", make_aggregate("count"), 10.0)


class TestRunPolicy:
    def test_produces_scored_run(self):
        stream = WorkloadSpec(duration=20, rate=30).build()
        run = run_policy(
            stream,
            standard_query(),
            "count",
            KSlackHandler(1.0),
            threshold=0.05,
        )
        assert run.report.n_oracle_windows > 0
        assert run.latency.count > 0
        assert run.mean_error == run.report.mean_error
        assert run.mean_latency == run.latency.mean

    def test_oracle_can_be_shared(self):
        from repro.engine.oracle import oracle_results

        stream = WorkloadSpec(duration=20, rate=30).build()
        aggregate = make_aggregate("count")
        truth = oracle_results(stream, standard_query(), aggregate)
        run = run_policy(
            stream, standard_query(), aggregate, NoBufferHandler(), oracle=truth
        )
        assert run.report.n_oracle_windows == len(truth)

    def test_custom_name(self):
        stream = WorkloadSpec(duration=10, rate=20).build()
        run = run_policy(
            stream, standard_query(), "count", NoBufferHandler(), name="custom"
        )
        assert run.name == "custom"


class TestHelpers:
    def test_sweep_runs_each_value(self):
        stream = WorkloadSpec(duration=40, rate=20).build()
        results = sweep(
            [0.0, 1.0],
            lambda k: run_policy(stream, standard_query(), "count", KSlackHandler(k)),
        )
        assert [value for value, __ in results] == [0.0, 1.0]
        assert results[1][1].latency.mean > results[0][1].latency.mean

    def test_workload_summary_mentions_disorder(self):
        stream = WorkloadSpec(duration=10, rate=20).build()
        summary = workload_summary(stream)
        assert "ooo=" in summary
        assert f"n={len(stream)}" in summary

    def test_default_delay_model_heavy_tail(self, rng):
        model = default_delay_model()
        samples = sorted(model.sample(rng, 0.0) for __ in range(5000))
        # Mixture: mostly sub-second, tail well beyond a second.
        assert samples[int(0.5 * len(samples))] < 0.5
        assert samples[-1] > 2.0
