"""Tests for experiment result containers and table rendering."""

import math

import pytest

from repro.bench.report import (
    ExperimentResult,
    format_value,
    is_monotone,
    render_table,
)
from repro.errors import ExperimentError


def sample_result() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="EX",
        title="Sample",
        columns=["name", "value"],
        notes=["a note"],
    )
    result.add_row(name="alpha", value=1.5)
    result.add_row(name="beta", value=None)
    return result


class TestExperimentResult:
    def test_add_row_requires_all_columns(self):
        result = ExperimentResult("EX", "t", ["a", "b"])
        with pytest.raises(ExperimentError):
            result.add_row(a=1)

    def test_extra_keys_allowed(self):
        result = ExperimentResult("EX", "t", ["a"])
        result.add_row(a=1, extra="kept but not rendered")
        assert result.rows[0]["extra"] == "kept but not rendered"

    def test_column_extraction(self):
        result = sample_result()
        assert result.column("name") == ["alpha", "beta"]

    def test_unknown_column_rejected(self):
        with pytest.raises(ExperimentError):
            sample_result().column("bogus")


class TestFormatValue:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, "-"),
            (True, "yes"),
            (False, "no"),
            (3, "3"),
            ("text", "text"),
            (1.5, "1.5"),
            (0.0, "0"),
            (math.nan, "nan"),
            (math.inf, "inf"),
        ],
    )
    def test_cases(self, value, expected):
        assert format_value(value) == expected

    def test_small_numbers_use_scientific(self):
        assert "e" in format_value(1.23e-7)

    def test_regular_numbers_four_decimals(self):
        assert format_value(0.123456) == "0.1235"


class TestRenderTable:
    def test_contains_all_cells(self):
        text = render_table(sample_result())
        assert "EX: Sample" in text
        assert "alpha" in text
        assert "1.5" in text
        assert "note: a note" in text

    def test_box_is_aligned(self):
        lines = render_table(sample_result()).splitlines()
        table_lines = [l for l in lines if l.startswith(("|", "+"))]
        assert len({len(l) for l in table_lines}) == 1

    def test_empty_rows_render(self):
        result = ExperimentResult("EX", "empty", ["a"])
        text = render_table(result)
        assert "| a" in text


class TestIsMonotone:
    def test_increasing(self):
        assert is_monotone([1, 2, 2, 3], increasing=True)
        assert not is_monotone([1, 3, 2], increasing=True)

    def test_decreasing(self):
        assert is_monotone([3, 2, 2, 1], increasing=False)
        assert not is_monotone([3, 1, 2], increasing=False)

    def test_tolerance_absorbs_ripples(self):
        assert is_monotone([1.0, 0.99, 2.0], increasing=True, tolerance=0.02)
        assert not is_monotone([1.0, 0.9, 2.0], increasing=True, tolerance=0.02)

    def test_empty_and_single(self):
        assert is_monotone([], increasing=True)
        assert is_monotone([5.0], increasing=False)


class TestExport:
    def test_csv_roundtrip_shape(self, tmp_path):
        import csv

        from repro.bench.report import to_csv

        result = sample_result()
        path = tmp_path / "out.csv"
        assert to_csv(result, path) == 2
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["name", "value"]
        assert rows[1][0] == "alpha"
        assert len(rows) == 3

    def test_json_payload(self, tmp_path):
        import json

        from repro.bench.report import to_json

        result = sample_result()
        path = tmp_path / "out.json"
        assert to_json(result, path) == 2
        payload = json.loads(path.read_text())
        assert payload["experiment_id"] == "EX"
        assert payload["rows"][0]["value"] == 1.5
        assert payload["notes"] == ["a note"]

    def test_creates_parent_dirs(self, tmp_path):
        from repro.bench.report import to_csv

        path = tmp_path / "a" / "b" / "out.csv"
        to_csv(sample_result(), path)
        assert path.exists()
