"""Tests for the ASCII plotting helpers."""

import math

import pytest

from repro.bench.plot import hbar, render_comparison, render_series, sparkline
from repro.errors import ConfigurationError


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_extremes_use_extreme_levels(self):
        line = sparkline([0.0, 10.0])
        assert line[0] == "▁"
        assert line[1] == "█"

    def test_monotone_series_is_monotone(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        levels = ["▁▂▃▄▅▆▇█".index(c) for c in line]
        assert levels == sorted(levels)

    def test_constant_series(self):
        assert sparkline([5.0, 5.0]) == "▁▁"

    def test_nan_renders_as_space(self):
        assert sparkline([1.0, math.nan, 2.0])[1] == " "

    def test_all_nan(self):
        assert sparkline([math.nan, math.nan]) == "  "

    def test_empty(self):
        assert sparkline([]) == ""


class TestHbar:
    def test_full_bar(self):
        assert hbar(10.0, 10.0, width=5) == "#####"

    def test_half_bar(self):
        assert hbar(5.0, 10.0, width=10) == "#####"

    def test_clamps_above_max(self):
        assert hbar(20.0, 10.0, width=4) == "####"

    def test_zero_max(self):
        assert hbar(1.0, 0.0) == ""

    def test_nan(self):
        assert hbar(math.nan, 10.0) == ""

    def test_bad_width(self):
        with pytest.raises(ConfigurationError):
            hbar(1.0, 1.0, width=0)


class TestRenderSeries:
    def test_rows_per_point(self):
        text = render_series([(0.0, 1.0), (30.0, 2.0)], label="errors")
        lines = text.splitlines()
        assert lines[0] == "errors"
        assert len(lines) == 3
        assert "t=     0.0" in lines[1]

    def test_largest_value_fills_bar(self):
        text = render_series([(0.0, 1.0), (1.0, 4.0)], width=8)
        assert "#" * 8 in text

    def test_empty(self):
        assert "empty series" in render_series([], label="x")

    def test_nan_handled(self):
        text = render_series([(0.0, math.nan), (1.0, 1.0)])
        assert "nan" in text


class TestRenderComparison:
    def test_aligned_labels(self):
        text = render_comparison([("short", 1.0), ("a much longer name", 2.0)])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_largest_fills(self):
        text = render_comparison([("a", 1.0), ("b", 2.0)], width=6)
        assert "#" * 6 in text

    def test_empty(self):
        assert "empty comparison" in render_comparison([])
