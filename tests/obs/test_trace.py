"""TraceRecorder behaviour: dedup, detail gating, caps, routing."""

import math

from repro.obs.trace import EVENT_KINDS, NULL_TRACER, TraceRecorder


def test_null_tracer_is_disabled_and_silent():
    assert NULL_TRACER.enabled is False
    # Every hook is a no-op even when called unguarded.
    NULL_TRACER.frontier_advance(1.0, 1.0, 0)
    NULL_TRACER.adaptation(1.0, 0.0, 1.0, 1.0, 0.05, None, None, None, "t")
    NULL_TRACER.meta(0.0, note="ignored")


def test_frontier_advances_are_deduplicated():
    recorder = TraceRecorder()
    recorder.frontier_advance(1.0, 5.0, 3)
    recorder.frontier_advance(1.5, 5.0, 4)  # re-observed, not an advance
    recorder.frontier_advance(2.0, 6.0, 2)
    advances = list(recorder.of_kind("frontier.advance"))
    assert [event.fields["frontier"] for event in advances] == [5.0, 6.0]


def test_detail_mode_gates_per_element_records():
    coarse = TraceRecorder(detail=False)
    coarse.element_admitted(1.0, 0.5, None)
    coarse.buffer_push(1.0, 1, 1)  # single push: detail only
    coarse.buffer_push(1.0, 8, 9)  # bulk push: always recorded
    assert [event.kind for event in coarse.events] == ["buffer.push"]

    fine = TraceRecorder(detail=True)
    fine.element_admitted(1.0, 0.5, None)
    fine.buffer_push(1.0, 1, 1)
    assert [event.kind for event in fine.events] == [
        "element.admitted",
        "buffer.push",
    ]


def test_max_events_cap_counts_dropped():
    recorder = TraceRecorder(max_events=2)
    for index in range(5):
        recorder.chunk(float(index), 1)
    assert len(recorder) == 2
    assert recorder.dropped == 3


def test_window_close_routes_flushed_to_window_flush():
    recorder = TraceRecorder()
    recorder.window_close(5.0, None, 0.0, 4.0, 7.0, 3, 1.0, flushed=False)
    recorder.window_close(5.0, None, 2.0, 6.0, 1.0, 1, math.nan, flushed=True)
    assert [event.kind for event in recorder.events] == [
        "window.close",
        "window.flush",
    ]


def test_clear_resets_events_and_dedup_state():
    recorder = TraceRecorder()
    recorder.frontier_advance(1.0, 5.0, 0)
    recorder.clear()
    assert len(recorder) == 0
    recorder.frontier_advance(2.0, 5.0, 0)  # same frontier records again
    assert len(recorder) == 1


def test_wall_times_are_nondecreasing():
    recorder = TraceRecorder()
    for index in range(50):
        recorder.chunk(float(index), 1)
    walls = [event.wall_time for event in recorder.events]
    assert walls == sorted(walls)
    assert all(wall >= 0.0 for wall in walls)


def test_every_recorded_kind_is_in_the_schema(burst_run):
    __, recorder = burst_run
    kinds = {event.kind for event in recorder.events}
    assert kinds <= set(EVENT_KINDS)
    # A burst run exercises the interesting parts of the schema.
    assert {
        "run.start",
        "run.end",
        "chunk",
        "buffer.release",
        "frontier.advance",
        "window.open",
        "window.retire",
        "adaptation",
    } <= kinds


def test_adaptation_records_carry_feedback_terms(burst_run):
    __, recorder = burst_run
    adaptation = next(recorder.of_kind("adaptation"))
    assert {
        "k_before",
        "k_after",
        "k_estimate",
        "allowed_late_fraction",
        "error_ewma",
        "gain",
        "residual",
        "target",
    } <= set(adaptation.fields)
    assert "error<=" in str(adaptation.fields["target"])
