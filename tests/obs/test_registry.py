"""Semantics of the metrics registry and its instruments."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = Counter("c")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)
        assert counter.value == 0

    def test_set_overwrites(self):
        counter = Counter("c")
        counter.inc(10)
        counter.set(3)
        assert counter.value == 3


class TestGauge:
    def test_tracks_high_water_mark(self):
        gauge = Gauge("g")
        gauge.set(2.0)
        gauge.set(7.5)
        gauge.set(1.0)
        assert gauge.value == 1.0
        assert gauge.maximum == 7.5


class TestHistogram:
    def test_empty_histogram_is_nan(self):
        histogram = Histogram("h")
        assert histogram.count == 0
        assert math.isnan(histogram.mean)
        assert math.isnan(histogram.quantile(0.5))
        assert math.isnan(histogram.minimum)
        assert math.isnan(histogram.maximum)

    def test_single_sample(self):
        histogram = Histogram("h")
        histogram.observe(3.5)
        assert histogram.count == 1
        assert histogram.mean == 3.5
        assert histogram.quantile(0.0) == 3.5
        assert histogram.quantile(1.0) == 3.5

    def test_nan_samples_are_dropped(self):
        histogram = Histogram("h")
        histogram.observe_many([1.0, math.nan, 3.0, math.nan])
        assert histogram.count == 2
        assert histogram.mean == 2.0

    def test_quantile_interpolates(self):
        histogram = Histogram("h")
        histogram.observe_many([4.0, 1.0, 2.0, 3.0])
        assert histogram.quantile(0.5) == pytest.approx(2.5)
        assert histogram.minimum == 1.0
        assert histogram.maximum == 4.0

    def test_quantile_out_of_range_rejected(self):
        histogram = Histogram("h")
        with pytest.raises(ConfigurationError):
            histogram.quantile(1.5)

    def test_summary_keys(self):
        histogram = Histogram("h")
        histogram.observe_many([1.0, 2.0])
        assert set(histogram.summary()) == {"count", "mean", "p50", "p95", "max"}


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("pipeline.elements_in")
        second = registry.counter("pipeline.elements_in")
        assert first is second
        assert len(registry) == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.histogram("x")

    def test_iteration_is_name_ordered(self):
        registry = MetricsRegistry()
        registry.counter("zebra")
        registry.gauge("alpha")
        registry.histogram("mid")
        assert [instrument.name for instrument in registry] == [
            "alpha",
            "mid",
            "zebra",
        ]

    def test_contains_and_get(self):
        registry = MetricsRegistry()
        registry.counter("c")
        assert "c" in registry
        assert "missing" not in registry
        assert registry.get("c") is registry.counter("c")
        assert registry.get("missing") is None

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["c"] == 2
        assert snapshot["g"] == 1.5
        assert isinstance(snapshot["h"], dict)
        assert snapshot["h"]["count"] == 1.0
