"""Report acceptance: the terminal summary surfaces what matters.

The acceptance criterion for ``python -m repro.obs report``: a traced
burst run's summary must show the adaptation history and the θ-violation
windows, with θ recovered from the trace itself when not supplied.
"""

import math

from repro.obs.report import (
    frontier_stalls,
    infer_theta,
    summarize,
    theta_violations,
)
from repro.obs.trace import TraceEvent


def test_infer_theta_from_adaptation_target(burst_run):
    __, recorder = burst_run
    assert infer_theta(recorder.events) == 0.05


def test_infer_theta_without_adaptations_is_none():
    assert infer_theta([]) is None


def test_frontier_stalls_sorted_longest_first(burst_run):
    __, recorder = burst_run
    stalls = frontier_stalls(recorder.events, top=5)
    assert 0 < len(stalls) <= 5
    gaps = [gap for gap, __, __ in stalls]
    assert gaps == sorted(gaps, reverse=True)
    for gap, start, stop in stalls:
        assert math.isclose(stop - start, gap)


def test_theta_violations_filters_by_error():
    def retire(error):
        return TraceEvent(
            "window.retire",
            10.0,
            0.0,
            {"key": None, "start": 0.0, "end": 10.0, "error": error},
        )

    events = [retire(0.01), retire(0.2), retire(math.nan)]
    violations = theta_violations(events, 0.05)
    assert [event.fields["error"] for event in violations] == [0.2]


def test_summary_surfaces_adaptations_and_violations(burst_run):
    __, recorder = burst_run
    text = summarize(recorder.events)
    assert "== run ==" in text
    assert "== adaptation history (" in text
    assert "(no adaptation rounds recorded)" not in text
    assert "== theta violations (error > 0.05" in text
    assert "== top frontier stalls" in text
    # The burst regime forces the adaptive slack above zero at some point.
    adaptations = [e for e in recorder.events if e.kind == "adaptation"]
    assert any(e.fields["k_after"] > 0 for e in adaptations)


def test_summary_elides_long_adaptation_tables(burst_run):
    __, recorder = burst_run
    rounds = sum(1 for e in recorder.events if e.kind == "adaptation")
    assert rounds > 6  # the fixture records a real history
    text = summarize(recorder.events, max_rows=6)
    assert f"... {rounds - 6} rounds elided ..." in text


def test_summary_without_target_hints_at_theta_flag():
    events = [
        TraceEvent("run.start", 0.0, 0.0, {"handler": "h", "n_elements": 0}),
        TraceEvent("run.end", 1.0, 0.0, {"n_results": 0, "wall_time_s": 0.1}),
    ]
    text = summarize(events)
    assert "no quality target found; pass --theta" in text
