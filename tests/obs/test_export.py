"""Exporter contracts: JSONL losslessness, Chrome trace structure.

The Chrome-trace test is the acceptance check for the Perfetto export: a
traced E4-style burst run must produce a ``trace_event`` list with named
tracks, monotone timestamps and strictly paired ``B``/``E`` duration
events — the structural properties Perfetto's importer relies on.
"""

import json
import math
from collections import defaultdict

from repro.obs.export import (
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.trace import TraceEvent, TraceRecorder


def test_jsonl_round_trip_is_lossless(tmp_path, burst_run):
    __, recorder = burst_run
    path = tmp_path / "trace.jsonl"
    written = write_jsonl(recorder.events, path)
    assert written == len(recorder.events)
    loaded = read_jsonl(path)
    assert loaded == recorder.events


def test_jsonl_round_trips_non_finite_floats(tmp_path):
    events = [
        TraceEvent(
            kind="meta",
            sim_time=-math.inf,
            wall_time=0.0,
            fields={"nan": math.nan, "inf": math.inf, "nested": [-math.inf]},
        )
    ]
    path = tmp_path / "weird.jsonl"
    write_jsonl(events, path)
    # The file itself must be plain JSON, line by line.
    for line in path.read_text().splitlines():
        json.loads(line)
    (loaded,) = read_jsonl(path)
    assert loaded.sim_time == -math.inf
    assert math.isnan(loaded.fields["nan"])  # type: ignore[arg-type]
    assert loaded.fields["inf"] == math.inf
    assert loaded.fields["nested"] == [-math.inf]


def test_chrome_trace_of_empty_or_nonfinite_events_is_empty():
    assert chrome_trace([]) == []
    only_nonfinite = [
        TraceEvent("frontier.advance", -math.inf, 0.0, {"frontier": -math.inf})
    ]
    assert chrome_trace(only_nonfinite) == []


class TestChromeTraceStructure:
    """Structural validation of the burst-run Perfetto export."""

    def test_metadata_names_tracks(self, burst_run):
        __, recorder = burst_run
        entries = chrome_trace(recorder.events, run_label="burst")
        metadata = [entry for entry in entries if entry["ph"] == "M"]
        names = {entry["args"]["name"] for entry in metadata}
        assert "burst" in names  # process_name
        assert "adaptation rounds" in names
        assert "late drops + findings" in names
        assert any(name.startswith("windows (lane ") for name in names)

    def test_counter_tracks_present(self, burst_run):
        __, recorder = burst_run
        entries = chrome_trace(recorder.events)
        counters = {entry["name"] for entry in entries if entry["ph"] == "C"}
        assert counters == {"frontier", "buffer occupancy", "slack K"}

    def test_timestamps_are_monotone_and_rebased(self, burst_run):
        __, recorder = burst_run
        entries = chrome_trace(recorder.events)
        timestamps = [entry["ts"] for entry in entries if "ts" in entry]
        assert timestamps == sorted(timestamps)
        assert timestamps[0] >= 0.0
        assert all(math.isfinite(ts) for ts in timestamps)

    def test_duration_events_pair_within_each_lane(self, burst_run):
        __, recorder = burst_run
        entries = chrome_trace(recorder.events)
        depth: dict[int, int] = defaultdict(int)
        open_names: dict[int, list[str]] = defaultdict(list)
        for entry in entries:
            if entry["ph"] == "B":
                depth[entry["tid"]] += 1
                open_names[entry["tid"]].append(entry["name"])
            elif entry["ph"] == "E":
                assert depth[entry["tid"]] > 0, "E without matching B"
                depth[entry["tid"]] -= 1
                assert open_names[entry["tid"]].pop() == entry["name"]
        assert all(count == 0 for count in depth.values()), "unclosed B"
        assert sum(1 for entry in entries if entry["ph"] == "B") > 0

    def test_sliding_overlap_uses_expected_lane_count(self, burst_run):
        __, recorder = burst_run
        entries = chrome_trace(recorder.events)
        lanes = {
            entry["tid"]
            for entry in entries
            if entry["ph"] == "M"
            and entry["args"]["name"].startswith("windows (lane ")
        }
        # 10s windows sliding every 2s keep 5 windows open concurrently.
        assert len(lanes) == 5

    def test_adaptation_instants_present(self, burst_run):
        __, recorder = burst_run
        entries = chrome_trace(recorder.events)
        instants = [entry for entry in entries if entry["ph"] == "i"]
        assert any(entry["name"] == "adaptation" for entry in instants)

    def test_write_chrome_trace_emits_loadable_json(self, tmp_path, burst_run):
        __, recorder = burst_run
        path = tmp_path / "trace.json"
        written = write_chrome_trace(recorder, path, run_label="burst")
        loaded = json.loads(path.read_text())
        assert isinstance(loaded, list)
        assert len(loaded) == written > 0
        required = {"name", "ph", "pid"}
        assert all(required <= set(entry) for entry in loaded)
