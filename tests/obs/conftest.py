"""Shared fixtures for the observability tests."""

from __future__ import annotations

import pytest

from repro.obs.demo import burst_demo_run


@pytest.fixture(scope="package")
def burst_run():
    """One traced E4-style burst run shared by the obs test modules."""
    return burst_demo_run(duration=60.0, rate=40.0, theta=0.05, seed=7)
