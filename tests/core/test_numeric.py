"""Compensated summation, drift metrics, and tolerance-comparison edges."""

from __future__ import annotations

import math

import pytest

from repro.core.numeric import (
    CompensatedSum,
    RetractableSum,
    compensated_sum,
    drift_exceeded,
    floats_close,
    neumaier_add,
    neumaier_add_many,
    neumaier_create,
    neumaier_merge,
    neumaier_total,
    relative_drift,
    ulp_distance,
)
from repro.errors import ConfigurationError

#: The textbook cancellation case: a bare left-to-right fold loses the 1.0.
TORTURE = [1e16, 1.0, -1e16]


# --------------------------------------------------------------------- #
# Neumaier primitives


def test_bare_fold_loses_the_torture_case():
    # Not a test of our code — a demonstration that the problem is real
    # and the torture case below is actually discriminating.
    total = 0.0
    for value in TORTURE:
        total = total + value
    assert total == 0.0


def test_neumaier_add_recovers_cancellation():
    acc = neumaier_create()
    for value in TORTURE:
        neumaier_add(acc, value)
    assert neumaier_total(acc) == 1.0


def test_neumaier_add_many_recovers_cancellation():
    acc = neumaier_create()
    neumaier_add_many(acc, TORTURE)
    assert neumaier_total(acc) == 1.0
    assert compensated_sum(TORTURE) == 1.0


def test_scalar_and_batched_folds_are_bit_identical():
    values = [1e16, 3.14159, -2.71828, 1.0, -1e16, 0.1, 0.2, 0.7]
    scalar = neumaier_create()
    for value in values:
        neumaier_add(scalar, value)
    batched = neumaier_create()
    neumaier_add_many(batched, values)
    assert scalar == batched  # the full [total, compensation] state


def test_neumaier_handles_value_larger_than_total():
    # Plain Kahan loses compensation when |value| > |total|; Neumaier's
    # magnitude test keeps it.
    acc = neumaier_create()
    neumaier_add_many(acc, [1.0, 1e100, 1.0, -1e100])
    assert neumaier_total(acc) == 2.0


def test_neumaier_merge_carries_compensation():
    left = neumaier_create()
    neumaier_add_many(left, [1e16, 1.0])
    right = neumaier_create()
    neumaier_add_many(right, [-1e16])
    neumaier_merge(left, right)
    assert neumaier_total(left) == 1.0


def test_long_sum_matches_fsum():
    values = [0.1] * 10_000
    assert compensated_sum(values) == math.fsum(values)


# --------------------------------------------------------------------- #
# CompensatedSum wrapper


def test_compensated_sum_object_paths_agree():
    values = [1e16, 1.0, -1e16, 0.3, 0.7]
    scalar = CompensatedSum()
    for value in values:
        scalar.add(value)
    batched = CompensatedSum()
    batched.add_many(values)
    assert scalar.value == batched.value == 2.0


def test_compensated_sum_merge():
    left = CompensatedSum()
    left.add_many([1e16, 1.0])
    right = CompensatedSum()
    right.add(-1e16)
    left.merge(right)
    assert left.value == 1.0


# --------------------------------------------------------------------- #
# RetractableSum


def test_retractable_sum_tracks_sliding_window():
    window: list[float] = []
    total = RetractableSum(lambda: window, resum_every=4)
    for value in [0.1, 0.2, 0.3, 0.4]:
        window.append(value)
        total.add(value)
    for _ in range(3):
        evicted = window.pop(0)
        total.retract(evicted)
    assert floats_close(total.value, 0.4)


def test_retractable_sum_resums_periodically():
    window: list[float] = []
    total = RetractableSum(lambda: window, resum_every=8)
    for step in range(64):
        value = 1e12 + step * 0.1
        window.append(value)
        total.add(value)
        if len(window) > 4:
            total.retract(window.pop(0))
    assert total.resum_count == (64 - 4) // 8
    # After enough slides the drift-free answer is the exact window sum.
    total.resum_now()
    assert total.value == compensated_sum(window)


def test_retractable_sum_bounds_drift():
    # Adversarial magnitudes: naive subtract-to-evict drifts visibly here.
    window: list[float] = []
    total = RetractableSum(lambda: window, drift_bound=1e-12, resum_every=16)
    naive = 0.0
    for step in range(512):
        # A transient 1e16 passes through the window; small values folded
        # while it dominates the naive total are rounded away entirely
        # (ulp(1e16) = 2.0) and never come back after its eviction.
        value = 1e16 if step % 64 == 0 else 0.001 * (step + 1)
        window.append(value)
        total.add(value)
        naive = naive + value
        if len(window) > 8:
            evicted = window.pop(0)
            total.retract(evicted)
            naive = naive - evicted
    exact = math.fsum(window)
    assert relative_drift(total.value, exact) <= total.drift_bound
    # The same schedule through bare +=/-= drifts beyond the bound,
    # proving the test would catch an unsound implementation.
    assert relative_drift(naive, exact) > total.drift_bound


def test_retractable_sum_validates_configuration():
    with pytest.raises(ConfigurationError, match="resum callable"):
        RetractableSum(None)
    with pytest.raises(ConfigurationError, match="drift_bound"):
        RetractableSum(lambda: [], drift_bound=0.0)
    with pytest.raises(ConfigurationError, match="resum_every"):
        RetractableSum(lambda: [], resum_every=0)


# --------------------------------------------------------------------- #
# floats_close edge cases (mirrors times_equal's contract)


def test_floats_close_basic_tolerance():
    assert floats_close(1.0, 1.0)
    assert floats_close(1e12, 1e12 * (1.0 + 1e-10))
    assert not floats_close(1.0, 1.001)


def test_floats_close_atol_floor_near_zero():
    # A pure relative tolerance vanishes at zero; the atol floor absorbs
    # accumulation residue in values that should be exactly zero.
    residue = math.fsum([0.1] * 3) - 0.3
    assert residue != 0.0
    assert floats_close(residue, 0.0)
    assert not floats_close(residue, 0.0, atol=0.0)


def test_floats_close_equal_infinities_are_close():
    assert floats_close(math.inf, math.inf)
    assert floats_close(-math.inf, -math.inf)


def test_floats_close_distinct_infinities_are_not():
    assert not floats_close(math.inf, -math.inf)
    assert not floats_close(-math.inf, math.inf)


def test_floats_close_infinity_vs_finite_is_not_close():
    # rtol * inf would otherwise swallow any finite comparand.
    assert not floats_close(math.inf, 1e300)
    assert not floats_close(1e300, math.inf)
    assert not floats_close(-math.inf, 0.0)


def test_floats_close_nan_is_never_close():
    assert not floats_close(math.nan, math.nan)
    assert not floats_close(math.nan, 0.0)
    assert not floats_close(math.inf, math.nan)


# --------------------------------------------------------------------- #
# drift metrics


def test_relative_drift_zero_for_identical():
    assert relative_drift(1.5, 1.5) == 0.0
    assert relative_drift(math.inf, math.inf) == 0.0


def test_relative_drift_scales_by_reference():
    assert floats_close(relative_drift(1.0 + 1e-6, 1.0), 1e-6)
    assert floats_close(relative_drift(2e6 + 2.0, 2e6), 1e-6)


def test_relative_drift_epsilon_floor_near_zero():
    # Reference ~0: honest absolute error must not explode.
    assert relative_drift(1e-15, 0.0) == 1e-15 / 1e-12


def test_relative_drift_nan_semantics():
    assert relative_drift(math.nan, math.nan) == 0.0
    assert relative_drift(math.nan, 1.0) == math.inf
    assert relative_drift(1.0, math.nan) == math.inf


def test_ulp_distance_counts_roundings():
    assert ulp_distance(1.0, 1.0) == 0.0
    one_ulp = math.nextafter(1.0, 2.0)
    assert ulp_distance(one_ulp, 1.0) == 1.0
    assert ulp_distance(math.inf, math.inf) == 0.0
    assert ulp_distance(math.inf, 1.0) == math.inf
    assert ulp_distance(math.nan, math.nan) == 0.0


def test_drift_exceeded_thresholds():
    assert not drift_exceeded(1.0, 1.0 + 1e-12, 1e-9)
    assert drift_exceeded(1.0, 1.001, 1e-9)
