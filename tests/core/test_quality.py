"""Tests for quality assessment against the oracle."""

import math

import pytest

from repro.core.quality import assess_quality, error_timeline
from repro.engine.operator import WindowResult
from repro.engine.windows import Window
from repro.errors import ConfigurationError


def result(window, value, key=None, latency=0.5, revision=0):
    return WindowResult(
        key=key,
        window=window,
        value=value,
        count=1,
        emit_time=window.end + latency,
        latency=latency,
        revision=revision,
    )


W1 = Window(0, 10)
W2 = Window(10, 20)
W3 = Window(20, 30)


class TestAssessQuality:
    def test_perfect_match(self):
        oracle = {(None, W1): (10.0, 5), (None, W2): (20.0, 5)}
        results = [result(W1, 10.0), result(W2, 20.0)]
        report = assess_quality(results, oracle, threshold=0.05)
        assert report.mean_error == 0.0
        assert report.max_error == 0.0
        assert report.window_recall == 1.0
        assert report.violation_fraction == 0.0
        assert report.meets()

    def test_known_errors(self):
        oracle = {(None, W1): (10.0, 5), (None, W2): (20.0, 5)}
        results = [result(W1, 9.0), result(W2, 20.0)]  # 10% error on W1
        report = assess_quality(results, oracle, threshold=0.05)
        assert report.mean_error == pytest.approx(0.05)
        assert report.max_error == pytest.approx(0.1)
        assert report.violation_fraction == pytest.approx(0.5)

    def test_missed_window_counts_as_full_loss(self):
        oracle = {(None, W1): (10.0, 5), (None, W2): (20.0, 5)}
        results = [result(W1, 10.0)]
        report = assess_quality(results, oracle, threshold=0.5)
        assert report.window_recall == 0.5
        assert report.mean_error == pytest.approx(0.5)  # (0 + 1) / 2
        assert report.max_error == 1.0

    def test_revision_last_value_wins(self):
        oracle = {(None, W1): (10.0, 5)}
        results = [
            result(W1, 7.0, revision=0, latency=0.1),
            result(W1, 10.0, revision=1, latency=3.0),
        ]
        report = assess_quality(results, oracle)
        assert report.mean_error == 0.0

    def test_no_threshold_means_nan_violations(self):
        oracle = {(None, W1): (10.0, 5)}
        report = assess_quality([result(W1, 10.0)], oracle)
        assert math.isnan(report.violation_fraction)
        with pytest.raises(ConfigurationError):
            report.meets()

    def test_meets_with_explicit_threshold(self):
        oracle = {(None, W1): (10.0, 5)}
        report = assess_quality([result(W1, 9.5)], oracle)
        assert report.meets(0.1)
        assert not report.meets(0.01)

    def test_empty_oracle(self):
        report = assess_quality([result(W1, 1.0)], {})
        assert report.n_oracle_windows == 0
        assert math.isnan(report.mean_error)

    def test_keyed_windows(self):
        oracle = {("a", W1): (10.0, 5), ("b", W1): (30.0, 5)}
        results = [result(W1, 10.0, key="a"), result(W1, 33.0, key="b")]
        report = assess_quality(results, oracle)
        assert report.mean_error == pytest.approx(0.05)

    def test_scores_kept_on_request(self):
        oracle = {(None, W1): (10.0, 5), (None, W2): (20.0, 5)}
        results = [result(W1, 9.0), result(W2, 20.0)]
        report = assess_quality(results, oracle, keep_scores=True)
        assert len(report.scores) == 2
        assert report.scores[0].window == W1
        assert report.scores[0].error == pytest.approx(0.1)

    def test_scores_empty_by_default(self):
        oracle = {(None, W1): (10.0, 5)}
        report = assess_quality([result(W1, 10.0)], oracle)
        assert report.scores == []

    def test_error_statistics_ordered(self):
        oracle = {
            (None, W1): (10.0, 5),
            (None, W2): (20.0, 5),
            (None, W3): (30.0, 5),
        }
        results = [result(W1, 9.0), result(W2, 15.0), result(W3, 30.0)]
        report = assess_quality(results, oracle)
        assert report.p50_error <= report.p95_error <= report.max_error


class TestErrorTimeline:
    def test_buckets_by_window_end(self):
        oracle = {
            (None, W1): (10.0, 5),
            (None, W2): (20.0, 5),
            (None, W3): (30.0, 5),
        }
        results = [result(W1, 9.0), result(W2, 20.0), result(W3, 30.0)]
        report = assess_quality(results, oracle, keep_scores=True)
        timeline = error_timeline(report, bucket=20.0)
        assert len(timeline) == 2
        # W1 (end 10) and W2 (end 20) fall in different buckets of size 20:
        # bucket 0 covers ends [0,20), bucket 1 covers [20,40).
        assert timeline[0] == (0.0, pytest.approx(0.1))
        assert timeline[1] == (20.0, pytest.approx(0.0))

    def test_requires_scores(self):
        oracle = {(None, W1): (10.0, 5)}
        report = assess_quality([result(W1, 10.0)], oracle)
        assert error_timeline(report, bucket=10.0) == []

    def test_bad_bucket_rejected(self):
        oracle = {(None, W1): (10.0, 5)}
        report = assess_quality([result(W1, 10.0)], oracle, keep_scores=True)
        with pytest.raises(ConfigurationError):
            error_timeline(report, bucket=0.0)
