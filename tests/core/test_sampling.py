"""Tests for online samplers and trackers."""

import math

import numpy as np
import pytest

from repro.core.sampling import (
    RateTracker,
    ReservoirSample,
    SlidingDelaySample,
    ValueStatsTracker,
)
from repro.errors import ConfigurationError


class TestSlidingDelaySample:
    def test_quantiles_of_known_data(self):
        sample = SlidingDelaySample(capacity=100)
        for delay in np.linspace(0, 1, 101):
            sample.observe(float(delay))
        assert sample.quantile(0.5) == pytest.approx(0.5, abs=0.05)
        assert sample.quantile(0.95) == pytest.approx(0.95, abs=0.05)
        assert sample.quantile(1.0) == pytest.approx(1.0, abs=0.02)

    def test_quantile_monotone_in_q(self, rng):
        sample = SlidingDelaySample(capacity=500)
        for delay in rng.exponential(1.0, size=500):
            sample.observe(float(delay))
        quantiles = [sample.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert quantiles == sorted(quantiles)

    def test_recency_window_evicts_old(self):
        sample = SlidingDelaySample(capacity=10)
        for __ in range(10):
            sample.observe(100.0)
        for __ in range(10):
            sample.observe(1.0)
        # Old large delays fully evicted.
        assert sample.quantile(1.0) == 1.0

    def test_empty_quantile_is_zero(self):
        assert SlidingDelaySample().quantile(0.9) == 0.0

    def test_count_is_total_not_window(self):
        sample = SlidingDelaySample(capacity=5)
        for __ in range(12):
            sample.observe(1.0)
        assert sample.count == 12
        assert sample.window_fill == 5

    def test_max_recent(self):
        sample = SlidingDelaySample(capacity=5)
        sample.observe(3.0)
        sample.observe(7.0)
        assert sample.max_recent() == 7.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            SlidingDelaySample().observe(-1.0)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            SlidingDelaySample(capacity=0)

    def test_bad_q_rejected(self):
        sample = SlidingDelaySample()
        sample.observe(1.0)
        with pytest.raises(ConfigurationError):
            sample.quantile(1.5)


class TestReservoirSample:
    def test_quantiles_of_known_data(self):
        sample = ReservoirSample(capacity=1000)
        for delay in np.linspace(0, 1, 500):
            sample.observe(float(delay))
        assert sample.quantile(0.5) == pytest.approx(0.5, abs=0.05)

    def test_keeps_uniform_history(self):
        """Unlike the sliding sample, the reservoir remembers old regimes."""
        sample = ReservoirSample(capacity=200, seed=1)
        for __ in range(500):
            sample.observe(10.0)
        for __ in range(500):
            sample.observe(1.0)
        # Roughly half the reservoir should still be from the old regime.
        assert sample.quantile(0.9) == 10.0

    def test_count(self):
        sample = ReservoirSample(capacity=5)
        for __ in range(9):
            sample.observe(1.0)
        assert sample.count == 9

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            ReservoirSample().observe(-0.5)

    def test_empty_quantile_is_zero(self):
        assert ReservoirSample().quantile(0.5) == 0.0


class TestValueStatsTracker:
    def test_tracks_mean_and_std(self, rng):
        tracker = ValueStatsTracker(alpha=0.01)
        for value in rng.normal(50.0, 5.0, size=20000):
            tracker.observe(float(value))
        assert tracker.mean == pytest.approx(50.0, rel=0.05)
        assert tracker.std == pytest.approx(5.0, rel=0.25)
        assert tracker.dispersion == pytest.approx(0.1, rel=0.3)

    def test_ignores_non_numeric(self):
        tracker = ValueStatsTracker()
        tracker.observe("not a number")  # type: ignore[arg-type]
        tracker.observe(math.nan)
        tracker.observe(math.inf)
        assert tracker.count == 0

    def test_single_value(self):
        tracker = ValueStatsTracker()
        tracker.observe(5.0)
        assert tracker.mean == 5.0
        assert tracker.std == 0.0

    def test_dispersion_guards_zero_mean(self):
        tracker = ValueStatsTracker()
        tracker.observe(0.0)
        assert tracker.dispersion >= 0.0

    def test_bad_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            ValueStatsTracker(alpha=0.0)


class TestRateTracker:
    def test_uniform_rate_recovered(self):
        tracker = RateTracker()
        for i in range(200):
            tracker.observe(i * 0.1)  # 10 events per second
        assert tracker.rate == pytest.approx(10.0, rel=0.05)

    def test_expected_window_count(self):
        tracker = RateTracker()
        for i in range(200):
            tracker.observe(i * 0.1)
        assert tracker.expected_window_count(5.0) == pytest.approx(50.0, rel=0.05)

    def test_nan_before_two_events(self):
        tracker = RateTracker()
        assert math.isnan(tracker.rate)
        tracker.observe(1.0)
        assert math.isnan(tracker.rate)
        assert math.isnan(tracker.expected_window_count(5.0))

    def test_rate_is_order_invariant(self, rng):
        """The estimate must not depend on observation order (disorder)."""
        times = list(rng.random(500) * 50.0)
        forward = RateTracker()
        for t_ in sorted(times):
            forward.observe(t_)
        shuffled = RateTracker()
        for t_ in times:
            shuffled.observe(t_)
        assert shuffled.rate == pytest.approx(forward.rate)

    def test_identical_timestamps_give_nan(self):
        tracker = RateTracker()
        tracker.observe(1.0)
        tracker.observe(1.0)
        assert math.isnan(tracker.rate)


class TestP2DelayBank:
    def test_quantiles_of_known_distribution(self, rng):
        import math

        from repro.core.sampling import P2DelayBank

        bank = P2DelayBank()
        for delay in rng.exponential(1.0, size=20000):
            bank.observe(float(delay))
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = -math.log(1 - q)
            assert bank.quantile(q) == pytest.approx(exact, rel=0.15)

    def test_interpolates_between_grid_points(self, rng):
        from repro.core.sampling import P2DelayBank

        bank = P2DelayBank()
        for delay in rng.random(5000):
            bank.observe(float(delay))
        # 0.85 lies between grid points 0.8 and 0.9.
        assert bank.quantile(0.8) <= bank.quantile(0.85) <= bank.quantile(0.9)

    def test_extremes(self, rng):
        from repro.core.sampling import P2DelayBank

        bank = P2DelayBank()
        for delay in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            bank.observe(delay)
        assert bank.quantile(0.0) == 1.0
        assert bank.quantile(1.0) == 6.0

    def test_empty_is_zero(self):
        from repro.core.sampling import P2DelayBank

        assert P2DelayBank().quantile(0.9) == 0.0

    def test_count(self):
        from repro.core.sampling import P2DelayBank

        bank = P2DelayBank()
        for __ in range(7):
            bank.observe(1.0)
        assert bank.count == 7

    def test_bad_grid_rejected(self):
        from repro.core.sampling import P2DelayBank

        with pytest.raises(ConfigurationError):
            P2DelayBank(grid=())
        with pytest.raises(ConfigurationError):
            P2DelayBank(grid=(0.9, 0.5))
        with pytest.raises(ConfigurationError):
            P2DelayBank(grid=(0.0, 0.5))

    def test_negative_delay_rejected(self):
        from repro.core.sampling import P2DelayBank

        with pytest.raises(ConfigurationError):
            P2DelayBank().observe(-0.1)

    def test_usable_as_aqk_delay_sample(self, rng):
        """The O(1)-memory bank drops into the adaptive handler."""
        from repro.core.aqk import AQKSlackHandler
        from repro.core.sampling import P2DelayBank
        from repro.core.spec import QualityTarget
        from repro.engine.aggregates import CountAggregate
        from repro.streams.delay import ExponentialDelay
        from repro.streams.disorder import inject_disorder
        from repro.streams.generators import generate_stream

        stream = inject_disorder(
            generate_stream(duration=60, rate=50, rng=rng),
            ExponentialDelay(0.5),
            rng,
        )
        handler = AQKSlackHandler(
            target=QualityTarget(0.05),
            aggregate=CountAggregate(),
            delay_sample=P2DelayBank(),
        )
        for element in stream:
            handler.offer(element)
        assert handler.adaptations
        assert handler.k >= 0.0
