"""Tests for quality-driven interval joins."""

import pytest

from repro.core.join_quality import (
    QualityDrivenIntervalJoin,
    join_recall,
    run_join,
)
from repro.engine.handlers import KSlackHandler, NoBufferHandler
from repro.engine.join import IntervalJoinOperator, oracle_join_pairs
from repro.errors import ConfigurationError
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import generate_stream


def side_of(element: StreamElement) -> str:
    return "left" if element.value >= 0 else "right"


def make_join_stream(rng, duration=120, rate=80, mean_delay=1.0):
    base = generate_stream(duration=duration, rate=rate, rng=rng, keys=("a", "b"))
    signed = [
        StreamElement(
            event_time=el.event_time,
            value=(1.0 if i % 2 == 0 else -1.0),
            key=el.key,
            seq=el.seq,
        )
        for i, el in enumerate(base)
    ]
    return inject_disorder(signed, ExponentialDelay(mean_delay), rng)


class TestShadowStore:
    def test_lost_pairs_counted(self, rng):
        stream = make_join_stream(rng)
        operator = IntervalJoinOperator(
            bound=0.5,
            handler=NoBufferHandler(),
            side_selector=side_of,
            shadow_horizon=60.0,
        )
        run_join(stream, operator)
        assert operator.lost_pairs > 0
        assert 0.0 < operator.recall_loss_estimate() < 1.0

    def test_lost_estimate_tracks_true_loss(self, rng):
        stream = make_join_stream(rng)
        operator = IntervalJoinOperator(
            bound=0.5,
            handler=NoBufferHandler(),
            side_selector=side_of,
            shadow_horizon=120.0,
        )
        results = run_join(stream, operator)
        truth = oracle_join_pairs(stream, 0.5, side_of)
        true_loss = 1.0 - join_recall(results, truth)
        assert operator.recall_loss_estimate() == pytest.approx(true_loss, abs=0.05)

    def test_shadow_disabled_by_default(self, rng):
        stream = make_join_stream(rng, duration=30)
        operator = IntervalJoinOperator(
            bound=0.5, handler=NoBufferHandler(), side_selector=side_of
        )
        run_join(stream, operator)
        assert operator.lost_pairs == 0
        assert operator.shadow_count() == 0

    def test_shadow_is_bounded(self, rng):
        stream = make_join_stream(rng)
        operator = IntervalJoinOperator(
            bound=0.5,
            handler=NoBufferHandler(),
            side_selector=side_of,
            shadow_horizon=10.0,
        )
        run_join(stream, operator)
        # Retention covers ~10s of a ~80 ev/s stream, far below the total.
        assert operator.shadow_count() < len(stream) / 4

    def test_negative_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            IntervalJoinOperator(
                bound=0.5,
                handler=NoBufferHandler(),
                side_selector=side_of,
                shadow_horizon=-1.0,
            )


class TestQualityDrivenJoin:
    def test_meets_recall_target(self, rng):
        stream = make_join_stream(rng, duration=240)
        operator = QualityDrivenIntervalJoin(
            bound=0.5, side_selector=side_of, threshold=0.05
        )
        results = run_join(stream, operator)
        truth = oracle_join_pairs(stream, 0.5, side_of)
        recall = join_recall(results, truth)
        assert recall >= 0.93  # loss <= ~theta with small tolerance

    def test_beats_no_buffer_recall(self, rng):
        stream = make_join_stream(rng, duration=240)
        truth = oracle_join_pairs(stream, 0.5, side_of)

        eager = IntervalJoinOperator(
            bound=0.5, handler=NoBufferHandler(), side_selector=side_of
        )
        eager_recall = join_recall(run_join(stream, eager), truth)

        adaptive = QualityDrivenIntervalJoin(
            bound=0.5, side_selector=side_of, threshold=0.05
        )
        adaptive_recall = join_recall(run_join(stream, adaptive), truth)
        assert adaptive_recall > eager_recall

    def test_slack_below_worst_case(self, rng):
        """The adaptive join never needs max-delay (worst-case) buffering.

        (On this short run the controller is still paying off its
        cold-start transient, so the slack is conservative but already
        below the max observed delay; E15 shows the long-run gap.)
        """
        stream = make_join_stream(rng, duration=240)
        max_delay = max(el.delay for el in stream)
        operator = QualityDrivenIntervalJoin(
            bound=0.5, side_selector=side_of, threshold=0.05
        )
        run_join(stream, operator)
        assert operator.current_slack < max_delay

    def test_stricter_target_larger_slack(self, rng):
        stream = make_join_stream(rng, duration=240)
        slacks = {}
        for threshold in (0.02, 0.3):
            operator = QualityDrivenIntervalJoin(
                bound=0.5, side_selector=side_of, threshold=threshold
            )
            run_join(stream, operator)
            slacks[threshold] = operator.current_slack
        assert slacks[0.02] >= slacks[0.3]

    def test_feedback_samples_flow_to_controller(self, rng):
        stream = make_join_stream(rng, duration=120)
        operator = QualityDrivenIntervalJoin(
            bound=0.5, side_selector=side_of, threshold=0.05, feedback_every=100
        )
        run_join(stream, operator)
        assert operator.handler.controller.samples_seen > 0

    def test_bad_feedback_every_rejected(self):
        with pytest.raises(ConfigurationError):
            QualityDrivenIntervalJoin(
                bound=0.5, side_selector=side_of, threshold=0.05, feedback_every=0
            )

    def test_join_recall_empty_oracle_is_nan(self):
        import math

        assert math.isnan(join_recall([], set()))
