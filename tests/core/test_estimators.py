"""Tests for the per-aggregate error models."""

import math

import pytest

from repro.core.estimators import (
    AdditiveMassModel,
    DistinctModel,
    ExtremumModel,
    MeanModel,
    NaiveModel,
    RankModel,
    StreamContext,
    make_error_model,
)
from repro.engine.aggregates import (
    CountAggregate,
    MaxAggregate,
    MeanAggregate,
    MedianAggregate,
)
from repro.errors import ConfigurationError

ALL_MODELS = [
    AdditiveMassModel(),
    MeanModel(),
    ExtremumModel(),
    RankModel(),
    DistinctModel(),
    NaiveModel(),
]

CONTEXTS = [
    StreamContext(dispersion=1.0, expected_window_count=100.0),
    StreamContext(dispersion=0.1, expected_window_count=10.0),
    StreamContext(dispersion=2.0, expected_window_count=math.nan),
    StreamContext.unknown(),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.kind)
@pytest.mark.parametrize("context", CONTEXTS, ids=["c100", "c10", "cnan", "cunk"])
class TestModelInvariants:
    def test_monotone_in_late_fraction(self, model, context):
        errors = [
            model.error_from_late_fraction(p, context)
            for p in (0.0, 0.01, 0.1, 0.5, 1.0)
        ]
        assert errors == sorted(errors)

    def test_zero_late_fraction_zero_error(self, model, context):
        assert model.error_from_late_fraction(0.0, context) == 0.0

    def test_inverse_is_consistent(self, model, context):
        """error(invert(theta)) <= theta (up to clipping at p=1)."""
        for theta in (0.001, 0.01, 0.05, 0.2):
            p = model.late_fraction_for_error(theta, context)
            assert 0.0 <= p <= 1.0
            if p < 1.0:
                assert model.error_from_late_fraction(p, context) <= theta * 1.0001

    def test_inverse_monotone_in_theta(self, model, context):
        fractions = [
            model.late_fraction_for_error(theta, context)
            for theta in (0.001, 0.01, 0.1, 0.5)
        ]
        assert fractions == sorted(fractions)

    def test_invalid_late_fraction_rejected(self, model, context):
        with pytest.raises(ConfigurationError):
            model.error_from_late_fraction(1.5, context)

    def test_negative_theta_rejected(self, model, context):
        with pytest.raises(ConfigurationError):
            model.late_fraction_for_error(-0.1, context)


class TestModelSpecifics:
    def test_additive_error_equals_fraction(self):
        context = StreamContext.unknown()
        assert AdditiveMassModel().error_from_late_fraction(0.07, context) == 0.07

    def test_mean_model_shrinks_with_window_count(self):
        small = StreamContext(dispersion=1.0, expected_window_count=10.0)
        large = StreamContext(dispersion=1.0, expected_window_count=1000.0)
        model = MeanModel()
        assert model.error_from_late_fraction(0.1, large) < model.error_from_late_fraction(
            0.1, small
        )

    def test_mean_model_allows_more_lateness_for_large_windows(self):
        small = StreamContext(dispersion=1.0, expected_window_count=10.0)
        large = StreamContext(dispersion=1.0, expected_window_count=1000.0)
        model = MeanModel()
        assert model.late_fraction_for_error(
            0.01, large
        ) > model.late_fraction_for_error(0.01, small)

    def test_mean_model_zero_dispersion_allows_everything(self):
        context = StreamContext(dispersion=0.0, expected_window_count=100.0)
        assert MeanModel().late_fraction_for_error(0.01, context) == 1.0

    def test_extremum_scales_with_dispersion(self):
        calm = StreamContext(dispersion=0.1, expected_window_count=100.0)
        wild = StreamContext(dispersion=2.0, expected_window_count=100.0)
        model = ExtremumModel()
        assert model.error_from_late_fraction(0.1, wild) > model.error_from_late_fraction(
            0.1, calm
        )

    def test_rank_is_half_of_extremum(self):
        context = StreamContext(dispersion=1.0, expected_window_count=100.0)
        assert RankModel().error_from_late_fraction(
            0.2, context
        ) == pytest.approx(0.5 * ExtremumModel().error_from_late_fraction(0.2, context))


class TestMakeErrorModel:
    @pytest.mark.parametrize(
        "aggregate,model_cls",
        [
            (CountAggregate(), AdditiveMassModel),
            (MeanAggregate(), MeanModel),
            (MaxAggregate(), ExtremumModel),
            (MedianAggregate(), RankModel),
        ],
    )
    def test_from_aggregate(self, aggregate, model_cls):
        assert isinstance(make_error_model(aggregate), model_cls)

    def test_from_kind_name(self):
        assert isinstance(make_error_model("naive"), NaiveModel)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_error_model("bogus")

    def test_describe(self):
        assert make_error_model("mean").describe() == "mean"
