"""Tests for requirement specifications."""

import pytest

from repro.core.spec import LatencyBudget, QualityTarget
from repro.errors import ConfigurationError


class TestQualityTarget:
    def test_construction(self):
        target = QualityTarget(0.05)
        assert target.threshold == 0.05
        assert target.metric == "mean_relative_error"

    @pytest.mark.parametrize("threshold", [0.0, 1.0, -0.1, 1.5])
    def test_out_of_range_rejected(self, threshold):
        with pytest.raises(ConfigurationError):
            QualityTarget(threshold)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigurationError):
            QualityTarget(0.05, metric="bogus")

    def test_describe(self):
        assert "0.05" in QualityTarget(0.05).describe()

    def test_frozen(self):
        target = QualityTarget(0.05)
        with pytest.raises(AttributeError):
            target.threshold = 0.1  # type: ignore[misc]


class TestLatencyBudget:
    def test_construction(self):
        assert LatencyBudget(2.0).seconds == 2.0

    def test_zero_allowed(self):
        assert LatencyBudget(0.0).seconds == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyBudget(-1.0)

    def test_describe(self):
        assert "2" in LatencyBudget(2.0).describe()


class TestBoundedQualityTarget:
    def test_construction(self):
        from repro.core.spec import BoundedQualityTarget

        target = BoundedQualityTarget(0.05, 2.0)
        assert target.threshold == 0.05
        assert target.budget_seconds == 2.0
        assert "0.05" in target.describe()
        assert "2" in target.describe()

    @pytest.mark.parametrize(
        "threshold,budget",
        [(0.0, 1.0), (1.0, 1.0), (0.05, -1.0)],
    )
    def test_invalid_rejected(self, threshold, budget):
        from repro.core.spec import BoundedQualityTarget

        with pytest.raises(ConfigurationError):
            BoundedQualityTarget(threshold, budget)
