"""Tests for quality-driven sequence-pattern matching."""

import pytest

from repro.core.pattern_quality import QualityDrivenSequencePattern
from repro.engine.handlers import NoBufferHandler
from repro.engine.pattern import (
    SequencePatternOperator,
    oracle_pattern_matches,
    pattern_recall,
)
from repro.errors import ConfigurationError
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import generate_stream


def is_a(element):
    return element.value > 0


def is_b(element):
    return element.value < 0


def drive(operator, elements):
    matches = []
    for element in elements:
        matches.extend(operator.process(element))
    matches.extend(operator.finish())
    return matches


def ab_stream(rng, duration=240, rate=80, mean_delay=1.0):
    base = generate_stream(duration=duration, rate=rate, rng=rng, keys=("x", "y"))
    typed = [
        StreamElement(
            event_time=el.event_time,
            value=(1.0 if i % 3 else -1.0),
            key=el.key,
            seq=el.seq,
        )
        for i, el in enumerate(base)
    ]
    return inject_disorder(typed, ExponentialDelay(mean_delay), rng)


class TestShadowLossCounting:
    def test_lost_matches_counted(self, rng):
        stream = ab_stream(rng, duration=60)
        operator = SequencePatternOperator(
            is_a, is_b, within=1.0, handler=NoBufferHandler(), shadow_horizon=60.0
        )
        drive(operator, stream)
        assert operator.matches_lost > 0

    def test_emitted_plus_lost_equals_truth(self, rng):
        """With full shadow coverage the accounting is exact."""
        stream = ab_stream(rng, duration=60)
        operator = SequencePatternOperator(
            is_a, is_b, within=1.0, handler=NoBufferHandler(), shadow_horizon=500.0
        )
        matches = drive(operator, stream)
        truth = oracle_pattern_matches(stream, is_a, is_b, 1.0)
        # Element-level emitted count == set-level here because generated
        # timestamps are continuous (no duplicate-timestamp collapses).
        assert operator.matches_emitted == len(
            {(m.key, m.first_time, m.second_time) for m in matches}
        )
        assert operator.matches_emitted + operator.matches_lost == len(truth)

    def test_loss_estimate_tracks_true_loss(self, rng):
        stream = ab_stream(rng, duration=60)
        operator = SequencePatternOperator(
            is_a, is_b, within=1.0, handler=NoBufferHandler(), shadow_horizon=500.0
        )
        matches = drive(operator, stream)
        truth = oracle_pattern_matches(stream, is_a, is_b, 1.0)
        true_loss = 1.0 - pattern_recall(matches, truth)
        assert operator.recall_loss_estimate() == pytest.approx(true_loss, abs=0.02)

    def test_shadow_disabled_by_default(self, rng):
        stream = ab_stream(rng, duration=30)
        operator = SequencePatternOperator(
            is_a, is_b, within=1.0, handler=NoBufferHandler()
        )
        drive(operator, stream)
        assert operator.matches_lost == 0

    def test_negative_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            SequencePatternOperator(
                is_a, is_b, within=1.0, handler=NoBufferHandler(), shadow_horizon=-1.0
            )


class TestQualityDrivenPattern:
    def test_meets_recall_target(self, rng):
        stream = ab_stream(rng)
        operator = QualityDrivenSequencePattern(
            is_a, is_b, within=1.0, threshold=0.05
        )
        matches = drive(operator, stream)
        truth = oracle_pattern_matches(stream, is_a, is_b, 1.0)
        assert pattern_recall(matches, truth) >= 0.93

    def test_beats_no_buffer(self, rng):
        stream = ab_stream(rng)
        truth = oracle_pattern_matches(stream, is_a, is_b, 1.0)
        eager = SequencePatternOperator(
            is_a, is_b, within=1.0, handler=NoBufferHandler()
        )
        eager_recall = pattern_recall(drive(eager, stream), truth)
        adaptive = QualityDrivenSequencePattern(is_a, is_b, within=1.0, threshold=0.05)
        adaptive_recall = pattern_recall(drive(adaptive, stream), truth)
        assert adaptive_recall > eager_recall

    def test_slack_below_worst_case(self, rng):
        stream = ab_stream(rng)
        max_delay = max(el.delay for el in stream)
        operator = QualityDrivenSequencePattern(
            is_a, is_b, within=1.0, threshold=0.05
        )
        drive(operator, stream)
        assert operator.current_slack < max_delay

    def test_feedback_reaches_controller(self, rng):
        stream = ab_stream(rng, duration=120)
        operator = QualityDrivenSequencePattern(
            is_a, is_b, within=1.0, threshold=0.05, feedback_every=100
        )
        drive(operator, stream)
        assert operator.handler.controller.samples_seen > 0

    def test_bad_feedback_every_rejected(self):
        with pytest.raises(ConfigurationError):
            QualityDrivenSequencePattern(
                is_a, is_b, within=1.0, threshold=0.05, feedback_every=0
            )
