"""Tests for the feedback controllers."""

import pytest

from repro.core.controller import (
    AIMDController,
    NoFeedbackController,
    PIController,
    PureFeedbackController,
)
from repro.errors import ConfigurationError


class TestNoFeedbackController:
    def test_identity(self):
        controller = NoFeedbackController()
        controller.observe_error(0.5)
        assert controller.adjust(1.25) == 1.25


class TestPIController:
    def test_no_feedback_passthrough(self):
        controller = PIController(target=0.05)
        assert controller.adjust(1.0) == pytest.approx(1.0)

    def test_error_above_target_raises_slack(self):
        controller = PIController(target=0.05)
        for __ in range(20):
            controller.observe_error(0.5)
        adjusted = [controller.adjust(1.0) for __ in range(5)]
        assert adjusted[-1] > 1.0
        assert adjusted == sorted(adjusted)  # integral keeps pushing up

    def test_error_below_target_lowers_slack(self):
        controller = PIController(target=0.05)
        for __ in range(20):
            controller.observe_error(0.0)
        adjusted = [controller.adjust(1.0) for __ in range(5)]
        assert adjusted[-1] < 1.0
        assert adjusted == sorted(adjusted, reverse=True)

    def test_gain_clamped(self):
        controller = PIController(target=0.01, gain_max=5.0)
        for __ in range(100):
            controller.observe_error(1.0)
            controller.adjust(1.0)
        assert controller.gain <= 5.0

    def test_gain_floor(self):
        controller = PIController(target=0.5, gain_min=0.2)
        for __ in range(200):
            controller.observe_error(0.0)
            controller.adjust(1.0)
        assert controller.gain >= 0.2

    def test_state_snapshot(self):
        controller = PIController(target=0.05)
        controller.observe_error(0.1)
        state = controller.state()
        assert state["samples"] == 1
        assert state["error_ewma"] == pytest.approx(0.1)
        assert "gain" in state

    def test_negative_error_rejected(self):
        with pytest.raises(ConfigurationError):
            PIController(target=0.05).observe_error(-0.1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target": 0.0},
            {"target": 0.05, "ewma_alpha": 0.0},
            {"target": 0.05, "kp": -1.0},
            {"target": 0.05, "gain_min": 2.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PIController(**kwargs)

    def test_never_returns_negative(self):
        controller = PIController(target=0.05)
        for __ in range(10):
            controller.observe_error(0.0)
        assert controller.adjust(-5.0) == 0.0


class TestAIMDController:
    def test_additive_increase_on_violation(self):
        controller = AIMDController(target=0.05, increase=0.5)
        controller.observe_error(1.0)
        first = controller.adjust(1.0)
        second = controller.adjust(1.0)
        assert second > first > 1.0

    def test_decay_toward_one_when_ok(self):
        controller = AIMDController(target=0.05)
        controller.observe_error(1.0)
        for __ in range(5):
            controller.adjust(1.0)
        inflated = controller.gain
        # Error fixed: now consistently below target.
        for __ in range(200):
            controller.observe_error(0.0)
        for __ in range(200):
            controller.adjust(1.0)
        assert controller.gain < inflated
        assert controller.gain == pytest.approx(1.0, abs=0.05)

    def test_gain_capped(self):
        controller = AIMDController(target=0.01, increase=1.0, gain_max=4.0)
        controller.observe_error(1.0)
        for __ in range(20):
            controller.adjust(1.0)
        assert controller.gain <= 4.0

    def test_bad_target_rejected(self):
        with pytest.raises(ConfigurationError):
            AIMDController(target=0.0)


class TestPureFeedbackController:
    def test_walks_up_under_violation(self):
        controller = PureFeedbackController(target=0.05, initial_k=1.0)
        controller.observe_error(1.0)
        ks = [controller.adjust(0.0) for __ in range(5)]
        assert ks == sorted(ks)
        assert ks[-1] > 1.0

    def test_walks_down_when_ok(self):
        controller = PureFeedbackController(target=0.05, initial_k=1.0)
        controller.observe_error(0.0)
        ks = [controller.adjust(0.0) for __ in range(5)]
        assert ks == sorted(ks, reverse=True)

    def test_ignores_estimate(self):
        controller = PureFeedbackController(target=0.05, initial_k=1.0)
        controller.observe_error(0.0)
        assert controller.adjust(100.0) == controller.k

    def test_k_capped(self):
        controller = PureFeedbackController(target=0.01, initial_k=1.0, k_max=10.0)
        controller.observe_error(1.0)
        for __ in range(100):
            controller.adjust(0.0)
        assert controller.k <= 10.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target": 0.0},
            {"target": 0.05, "initial_k": -1.0},
            {"target": 0.05, "up": 0.9},
            {"target": 0.05, "down": 1.1},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PureFeedbackController(**kwargs)
