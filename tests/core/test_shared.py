"""Tests for shared multi-query disorder handling."""

import pytest

from repro.core.quality import assess_quality
from repro.core.shared import SharedAQKBuffer, run_shared
from repro.core.spec import LatencyBudget, QualityTarget
from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import CountAggregate
from repro.engine.handlers import KSlackHandler
from repro.engine.oracle import oracle_results
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.errors import ConfigurationError
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.generators import generate_stream


def make_stream(rng, duration=90, rate=60):
    return inject_disorder(
        generate_stream(duration=duration, rate=rate, rng=rng),
        ExponentialDelay(0.5),
        rng,
    )


def build_shared(queries):
    """queries: list of (query_id, threshold). Returns (buffer, operators)."""
    buffer = SharedAQKBuffer()
    operators = {}
    for query_id, threshold in queries:
        handler = buffer.register(
            query_id,
            target=QualityTarget(threshold),
            aggregate=CountAggregate(),
            window_size=10.0,
        )
        operators[query_id] = WindowAggregateOperator(
            SlidingWindowAssigner(10, 2), CountAggregate(), handler
        )
    return buffer, operators


class TestSharedAQKBuffer:
    def test_all_queries_receive_all_elements(self, rng):
        stream = make_stream(rng)
        buffer, operators = build_shared([("strict", 0.01), ("loose", 0.2)])
        results = run_shared(stream, buffer, operators)
        for query_id, operator in operators.items():
            assert operator.stats.elements_in == len(stream)
            total = operator.stats.results_out
            assert total == len(results[query_id])
            assert total > 0

    def test_strict_query_gets_larger_slack(self, rng):
        stream = make_stream(rng)
        buffer, operators = build_shared([("strict", 0.01), ("loose", 0.2)])
        run_shared(stream, buffer, operators)
        assert buffer.slack_of("strict") >= buffer.slack_of("loose")

    def test_loose_query_gets_lower_latency(self, rng):
        stream = make_stream(rng)
        buffer, operators = build_shared([("strict", 0.01), ("loose", 0.2)])
        results = run_shared(stream, buffer, operators)
        lat = {
            qid: sum(r.latency for r in rs if not r.flushed)
            / max(1, sum(1 for r in rs if not r.flushed))
            for qid, rs in results.items()
        }
        assert lat["loose"] <= lat["strict"]

    def test_quality_close_to_private_run(self, rng):
        """Shared execution quality matches a private AQ-K run's ballpark."""
        stream = make_stream(rng)
        buffer, operators = build_shared([("q", 0.05)])
        results = run_shared(stream, buffer, operators)
        truth = oracle_results(
            stream, SlidingWindowAssigner(10, 2), CountAggregate()
        )
        report = assess_quality(results["q"], truth, threshold=0.05)
        assert report.mean_error <= 0.1

    def test_memory_below_sum_of_private_buffers(self, rng):
        """One shared copy beats one buffer per query at equal targets."""
        from repro.core.aqk import AQKSlackHandler

        stream = make_stream(rng)
        thresholds = [("q1", 0.01), ("q2", 0.05), ("q3", 0.2)]
        buffer, operators = build_shared(thresholds)
        run_shared(stream, buffer, operators)
        shared_peak = buffer.max_buffered

        private_peak = 0
        for __, threshold in thresholds:
            handler = AQKSlackHandler(
                target=QualityTarget(threshold),
                aggregate=CountAggregate(),
                window_size=10.0,
            )
            operator = WindowAggregateOperator(
                SlidingWindowAssigner(10, 2), CountAggregate(), handler
            )
            run_pipeline(stream, operator)
            private_peak += handler.max_buffered_count()
        assert shared_peak <= private_peak

    def test_duplicate_registration_rejected(self):
        buffer = SharedAQKBuffer()
        buffer.register("q", QualityTarget(0.05), CountAggregate())
        with pytest.raises(ConfigurationError):
            buffer.register("q", QualityTarget(0.01), CountAggregate())

    def test_registration_after_start_rejected(self, rng):
        stream = make_stream(rng, duration=5)
        buffer, operators = build_shared([("q", 0.05)])
        buffer.offer(stream[0])
        with pytest.raises(ConfigurationError):
            buffer.register("late", QualityTarget(0.05), CountAggregate())

    def test_offer_without_queries_rejected(self, rng):
        stream = make_stream(rng, duration=5)
        with pytest.raises(ConfigurationError):
            SharedAQKBuffer().offer(stream[0])

    def test_latency_budget_queries_supported(self, rng):
        stream = make_stream(rng, duration=30)
        buffer = SharedAQKBuffer()
        handler = buffer.register(
            "budget", target=LatencyBudget(1.0), aggregate=CountAggregate()
        )
        operator = WindowAggregateOperator(
            SlidingWindowAssigner(10, 2), CountAggregate(), handler
        )
        results = run_shared(stream, buffer, {"budget": operator})
        assert results["budget"]
        assert buffer.slack_of("budget") <= 1.0

    def test_late_counters_tracked(self, rng):
        stream = make_stream(rng)
        buffer, operators = build_shared([("loose", 0.2)])
        run_shared(stream, buffer, operators)
        # With a loose target and exponential delays some elements arrive
        # after the query's cursor passed them.
        assert buffer.late_for_query["loose"] >= 0
