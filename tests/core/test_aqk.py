"""Tests for the adaptive quality-driven K-slack handler."""

import math

import pytest

from repro.core.aqk import AQKSlackHandler
from repro.core.controller import NoFeedbackController
from repro.core.spec import LatencyBudget, QualityTarget
from repro.engine.aggregates import CountAggregate, MeanAggregate
from repro.errors import ConfigurationError
from repro.streams.delay import ConstantDelay, ExponentialDelay, UniformDelay
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import generate_stream


def drive(handler, elements):
    released = []
    frontiers = []
    for element in elements:
        released.extend(handler.offer(element))
        frontiers.append(handler.frontier)
    released.extend(handler.flush())
    return released, frontiers


def make_stream(rng, model, duration=60, rate=100):
    return inject_disorder(generate_stream(duration=duration, rate=rate, rng=rng), model, rng)


class TestQualityMode:
    def test_k_tracks_delay_quantile_without_feedback(self, rng):
        """For count, allowed late fraction = theta: K ~ Q(1 - theta)."""
        stream = make_stream(rng, UniformDelay(0.0, 1.0), duration=120)
        theta = 0.1
        handler = AQKSlackHandler(
            target=QualityTarget(theta),
            aggregate=CountAggregate(),
            controller=NoFeedbackController(),
            adapt_interval=0.5,
        )
        drive(handler, stream)
        # Q(0.9) of uniform [0,1) delays is 0.9.
        assert handler.k == pytest.approx(0.9, abs=0.1)

    def test_looser_target_means_smaller_k(self, rng):
        stream = make_stream(rng, ExponentialDelay(0.5), duration=120)
        ks = {}
        for theta in (0.01, 0.2):
            handler = AQKSlackHandler(
                target=QualityTarget(theta),
                aggregate=CountAggregate(),
                controller=NoFeedbackController(),
            )
            drive(handler, stream)
            ks[theta] = handler.k
        assert ks[0.2] < ks[0.01]

    def test_frontier_monotone_under_adaptation(self, rng):
        stream = make_stream(rng, ExponentialDelay(0.5))
        handler = AQKSlackHandler(
            target=QualityTarget(0.05), aggregate=CountAggregate()
        )
        __, frontiers = drive(handler, stream)
        assert frontiers == sorted(frontiers)

    def test_releases_everything_exactly_once(self, rng):
        stream = make_stream(rng, ExponentialDelay(0.5))
        handler = AQKSlackHandler(
            target=QualityTarget(0.05), aggregate=CountAggregate()
        )
        released, __ = drive(handler, stream)
        assert sorted(released, key=lambda e: e.seq) == sorted(
            stream, key=lambda e: e.seq
        )

    def test_no_adaptation_during_warmup(self, rng):
        stream = make_stream(rng, ExponentialDelay(0.5))
        handler = AQKSlackHandler(
            target=QualityTarget(0.05),
            aggregate=CountAggregate(),
            warmup_elements=10**9,
        )
        drive(handler, stream)
        assert handler.adaptations == []
        assert handler.k == 0.0

    def test_adaptation_interval_respected(self, rng):
        stream = make_stream(rng, ExponentialDelay(0.5), duration=60)
        handler = AQKSlackHandler(
            target=QualityTarget(0.05),
            aggregate=CountAggregate(),
            adapt_interval=5.0,
            warmup_elements=0,
        )
        drive(handler, stream)
        times = [record.arrival_time for record in handler.adaptations]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap >= 5.0 - 1e-9 for gap in gaps)

    def test_k_clamped_to_bounds(self, rng):
        stream = make_stream(rng, ExponentialDelay(2.0))
        handler = AQKSlackHandler(
            target=QualityTarget(0.001),
            aggregate=CountAggregate(),
            k_max=0.5,
        )
        drive(handler, stream)
        assert handler.k <= 0.5
        assert all(record.k_applied <= 0.5 for record in handler.adaptations)

    def test_in_order_stream_keeps_k_near_zero(self, rng):
        stream = make_stream(rng, ConstantDelay(0.1))
        handler = AQKSlackHandler(
            target=QualityTarget(0.05), aggregate=CountAggregate()
        )
        drive(handler, stream)
        # Every delay is 0.1; Q(0.95) = 0.1, and feedback sees zero error.
        assert handler.k <= 0.2

    def test_mean_aggregate_allows_smaller_k_than_count(self, rng):
        """The mean error model tolerates far more lateness per error unit."""
        stream = make_stream(rng, ExponentialDelay(0.5), duration=120)
        ks = {}
        for aggregate in (CountAggregate(), MeanAggregate()):
            handler = AQKSlackHandler(
                target=QualityTarget(0.02),
                aggregate=aggregate,
                window_size=10.0,
                controller=NoFeedbackController(),
            )
            drive(handler, stream)
            ks[aggregate.name] = handler.k
        assert ks["mean"] <= ks["count"]

    def test_adaptations_recorded_with_state(self, rng):
        stream = make_stream(rng, ExponentialDelay(0.5))
        handler = AQKSlackHandler(
            target=QualityTarget(0.05), aggregate=CountAggregate()
        )
        drive(handler, stream)
        assert handler.adaptations
        record = handler.adaptations[-1]
        assert 0.0 <= record.allowed_late_fraction <= 1.0
        assert record.k_estimate >= 0.0
        assert record.k_applied >= 0.0


class TestFeedbackIntegration:
    def test_observed_violations_inflate_k(self, rng):
        stream = make_stream(rng, ExponentialDelay(0.5), duration=120)
        handler = AQKSlackHandler(
            target=QualityTarget(0.05), aggregate=CountAggregate()
        )
        for i, element in enumerate(stream):
            handler.offer(element)
            # Simulate an operator persistently reporting violations.
            if i % 10 == 0:
                handler.observe_error(0.5)
        no_feedback = AQKSlackHandler(
            target=QualityTarget(0.05),
            aggregate=CountAggregate(),
            controller=NoFeedbackController(),
        )
        import numpy as np

        for element in stream:
            no_feedback.offer(element)
        assert handler.k > no_feedback.k


class TestLatencyBudgetMode:
    def test_k_never_exceeds_budget(self, rng):
        stream = make_stream(rng, ExponentialDelay(2.0))
        handler = AQKSlackHandler(
            target=LatencyBudget(1.5), aggregate=CountAggregate()
        )
        drive(handler, stream)
        assert all(record.k_applied <= 1.5 for record in handler.adaptations)

    def test_nearly_ordered_stream_uses_less_than_budget(self, rng):
        stream = make_stream(rng, UniformDelay(0.0, 0.1))
        handler = AQKSlackHandler(
            target=LatencyBudget(5.0), aggregate=CountAggregate()
        )
        drive(handler, stream)
        assert handler.k <= 0.2  # no point buffering 5s for 0.1s delays

    def test_heavy_disorder_saturates_budget(self, rng):
        stream = make_stream(rng, UniformDelay(0.0, 10.0))
        handler = AQKSlackHandler(
            target=LatencyBudget(2.0), aggregate=CountAggregate()
        )
        drive(handler, stream)
        assert handler.k == pytest.approx(2.0, abs=0.01)


class TestValidation:
    def test_requires_arrival_timestamps(self):
        handler = AQKSlackHandler(
            target=QualityTarget(0.05), aggregate=CountAggregate()
        )
        with pytest.raises(ConfigurationError):
            handler.offer(StreamElement(event_time=1.0, value=0.0))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"adapt_interval": 0.0},
            {"warmup_elements": -1},
            {"k_min": 2.0, "k_max": 1.0},
            {"min_late_fraction": 0.0},
            {"budget_quantile_cap": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AQKSlackHandler(
                target=QualityTarget(0.05), aggregate=CountAggregate(), **kwargs
            )

    def test_error_model_instance_accepted(self):
        from repro.core.estimators import NaiveModel

        handler = AQKSlackHandler(target=QualityTarget(0.05), aggregate=NaiveModel())
        assert handler.error_model.kind == "naive"

    def test_describe_mentions_target(self):
        handler = AQKSlackHandler(
            target=QualityTarget(0.05), aggregate=CountAggregate()
        )
        assert "0.05" in handler.describe()


class TestEstimationConfidence:
    def test_confidence_inflates_k_on_small_samples(self, rng):
        stream = make_stream(rng, ExponentialDelay(0.5), duration=30)
        ks = {}
        for z in (0.0, 3.0):
            handler = AQKSlackHandler(
                target=QualityTarget(0.05),
                aggregate=CountAggregate(),
                controller=NoFeedbackController(),
                estimation_confidence=z,
            )
            drive(handler, stream)
            ks[z] = handler.k
        assert ks[3.0] >= ks[0.0]

    def test_confidence_padding_shrinks_with_sample_size(self, rng):
        """With a large sample, z-padding moves the quantile rank little."""
        long_stream = make_stream(rng, ExponentialDelay(0.5), duration=240)
        ks = {}
        for z in (0.0, 2.0):
            handler = AQKSlackHandler(
                target=QualityTarget(0.05),
                aggregate=CountAggregate(),
                controller=NoFeedbackController(),
                estimation_confidence=z,
            )
            drive(handler, long_stream)
            ks[z] = handler.k
        # Well under a factor of two apart once thousands of delays seen.
        assert ks[2.0] <= ks[0.0] * 2.0

    def test_negative_confidence_rejected(self):
        with pytest.raises(ConfigurationError):
            AQKSlackHandler(
                target=QualityTarget(0.05),
                aggregate=CountAggregate(),
                estimation_confidence=-1.0,
            )


class TestBoundedQualityMode:
    def test_budget_never_exceeded(self, rng):
        from repro.core.spec import BoundedQualityTarget

        stream = make_stream(rng, ExponentialDelay(2.0), duration=120)
        handler = AQKSlackHandler(
            target=BoundedQualityTarget(0.001, 1.0),
            aggregate=CountAggregate(),
        )
        drive(handler, stream)
        assert handler.adaptations
        assert all(r.k_applied <= 1.0 + 1e-9 for r in handler.adaptations)

    def test_behaves_like_quality_when_budget_slack_unneeded(self, rng):
        from repro.core.spec import BoundedQualityTarget

        stream = make_stream(rng, ExponentialDelay(0.2), duration=120)
        bounded = AQKSlackHandler(
            target=BoundedQualityTarget(0.05, 100.0),
            aggregate=CountAggregate(),
        )
        plain = AQKSlackHandler(
            target=QualityTarget(0.05), aggregate=CountAggregate()
        )
        drive(bounded, stream)
        drive(plain, stream)
        assert bounded.k == pytest.approx(plain.k, rel=0.2, abs=0.05)

    def test_quality_clamped_under_heavy_disorder(self, rng):
        """When the budget cannot buy the target, latency wins."""
        from repro.core.spec import BoundedQualityTarget

        stream = make_stream(rng, UniformDelay(0.0, 10.0), duration=120)
        handler = AQKSlackHandler(
            target=BoundedQualityTarget(0.001, 0.5),
            aggregate=CountAggregate(),
        )
        drive(handler, stream)
        assert handler.k <= 0.5 + 1e-9

    def test_default_controller_attached(self):
        from repro.core.spec import BoundedQualityTarget
        from repro.core.controller import PIController

        handler = AQKSlackHandler(
            target=BoundedQualityTarget(0.05, 1.0), aggregate=CountAggregate()
        )
        assert isinstance(handler.controller, PIController)


class TestContextSensitivity:
    def test_mean_model_reacts_to_value_dispersion(self, rng):
        """Wilder values make the mean aggregate error-prone: K grows."""
        from repro.streams.generators import GaussianValues, generate_stream

        ks = {}
        for label, std in (("calm", 0.1), ("wild", 50.0)):
            base = generate_stream(
                duration=120,
                rate=100,
                rng=rng,
                value_process=GaussianValues(mean=100.0, std=std),
            )
            stream = inject_disorder(base, ExponentialDelay(0.5), rng)
            handler = AQKSlackHandler(
                target=QualityTarget(0.005),
                aggregate=MeanAggregate(),
                window_size=10.0,
                controller=NoFeedbackController(),
            )
            for element in stream:
                handler.offer(element)
            ks[label] = handler.k
        assert ks["wild"] > ks["calm"]

    def test_rate_context_scales_mean_tolerance(self, rng):
        """Denser windows absorb more late mass for mean aggregates."""
        ks = {}
        for label, rate in (("sparse", 5.0), ("dense", 500.0)):
            stream = make_stream(
                rng, ExponentialDelay(0.5), duration=120, rate=rate
            )
            handler = AQKSlackHandler(
                target=QualityTarget(0.01),
                aggregate=MeanAggregate(),
                window_size=10.0,
                controller=NoFeedbackController(),
            )
            for element in stream:
                handler.offer(element)
            ks[label] = handler.k
        assert ks["dense"] <= ks["sparse"]
