"""Tests for offline error-model calibration."""

import pytest

from repro.core.aqk import AQKSlackHandler
from repro.core.calibration import (
    CalibratedErrorModel,
    calibrate_error_model,
)
from repro.core.controller import NoFeedbackController
from repro.core.estimators import StreamContext
from repro.core.quality import assess_quality
from repro.core.spec import QualityTarget
from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import CountAggregate
from repro.engine.oracle import oracle_results
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.errors import ConfigurationError
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.generators import generate_stream

ASSIGNER = SlidingWindowAssigner(10, 2)


def make_stream(rng, duration=120):
    return inject_disorder(
        generate_stream(duration=duration, rate=80, rng=rng),
        ExponentialDelay(0.5),
        rng,
    )


class TestCalibratedErrorModel:
    def test_linear_map(self):
        model = CalibratedErrorModel(scale=0.5)
        context = StreamContext.unknown()
        assert model.error_from_late_fraction(0.1, context) == pytest.approx(0.05)
        assert model.late_fraction_for_error(0.05, context) == pytest.approx(0.1)

    def test_inverse_clipped_at_one(self):
        model = CalibratedErrorModel(scale=0.01)
        assert model.late_fraction_for_error(0.5, StreamContext.unknown()) == 1.0

    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            CalibratedErrorModel(scale=0.0)

    def test_describe_mentions_scale(self):
        assert "0.25" in CalibratedErrorModel(0.25).describe()


class TestCalibration:
    def test_count_model_is_conservative(self, rng):
        """The fitted scale for count is well below the nominal 1.0 — a
        late element only misses windows closing before its arrival."""
        stream = make_stream(rng)
        result = calibrate_error_model(stream, ASSIGNER, CountAggregate())
        assert 0.0 < result.scale < 0.6

    def test_points_recorded_monotone(self, rng):
        stream = make_stream(rng)
        result = calibrate_error_model(stream, ASSIGNER, CountAggregate())
        assert len(result.points) >= 5
        fractions = [point.late_fraction for point in result.points]
        errors = [point.mean_error for point in result.points]
        # Larger K -> less late mass and less error.
        assert fractions == sorted(fractions, reverse=True)
        assert errors[0] >= errors[-1]

    def test_calibrated_model_cuts_latency_without_feedback(self, rng):
        """With feedback disabled, calibration replaces what the controller
        would have learned: lower latency at comparable quality."""
        profile = make_stream(rng)
        live = make_stream(rng, duration=120)
        calibrated = calibrate_error_model(profile, ASSIGNER, CountAggregate())
        truth = oracle_results(live, ASSIGNER, CountAggregate())
        theta = 0.02

        def run_with(model_source):
            handler = AQKSlackHandler(
                target=QualityTarget(theta),
                aggregate=model_source,
                window_size=10.0,
                controller=NoFeedbackController(),
            )
            operator = WindowAggregateOperator(ASSIGNER, CountAggregate(), handler)
            output = run_pipeline(live, operator)
            report = assess_quality(output.results, truth, threshold=theta)
            return output.latency_summary().mean, report.mean_error

        naive_latency, naive_error = run_with(CountAggregate())
        calibrated_latency, calibrated_error = run_with(calibrated.model)

        assert calibrated_latency < naive_latency
        assert calibrated_error <= theta * 1.5
        assert naive_error <= theta  # conservative model over-delivers

    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            calibrate_error_model([], ASSIGNER, CountAggregate())

    def test_custom_grid(self, rng):
        stream = make_stream(rng, duration=60)
        result = calibrate_error_model(
            stream, ASSIGNER, CountAggregate(), k_grid=[0.0, 1.0]
        )
        assert [point.k for point in result.points] == [0.0, 1.0]

    def test_negative_grid_rejected(self, rng):
        stream = make_stream(rng, duration=30)
        with pytest.raises(ConfigurationError):
            calibrate_error_model(
                stream, ASSIGNER, CountAggregate(), k_grid=[-1.0]
            )

    def test_ordered_trace_unfittable(self, rng):
        """A trace with no lateness at any K has nothing to fit."""
        from repro.streams.delay import ConstantDelay

        stream = inject_disorder(
            generate_stream(duration=30, rate=20, rng=rng), ConstantDelay(0.1), rng
        )
        with pytest.raises(ConfigurationError):
            calibrate_error_model(
                stream, ASSIGNER, CountAggregate(), k_grid=[5.0]
            )
