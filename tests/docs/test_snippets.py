"""Every code block in README.md and docs/TUTORIAL.md must execute.

Python blocks of one document run top to bottom in a shared namespace —
exactly how a reader follows the document in a fresh interpreter — so
later snippets may reuse names earlier ones define.  Bash blocks are
syntax-checked with ``bash -n`` (running them would re-install the
package or launch full-scale experiments).
"""

from __future__ import annotations

import contextlib
import io
import re
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
DOCUMENTS = [ROOT / "README.md", ROOT / "docs" / "TUTORIAL.md"]

_FENCE = re.compile(r"^```(\w*)\s*$")


def collect_blocks(path: Path) -> list[tuple[int, str, str]]:
    """``(line_number, language, source)`` for each fenced block."""
    blocks: list[tuple[int, str, str]] = []
    language: str | None = None
    start = 0
    body: list[str] = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        match = _FENCE.match(line.strip())
        if match and language is None:
            language = match.group(1)
            start = number
            body = []
        elif line.strip().startswith("```") and language is not None:
            blocks.append((start, language, "\n".join(body)))
            language = None
        elif language is not None:
            body.append(line)
    assert language is None, f"{path}: unterminated code fence at line {start}"
    return blocks


def test_documents_contain_snippets():
    for document in DOCUMENTS:
        assert collect_blocks(document), f"{document} has no code blocks"


@pytest.mark.parametrize(
    "document", DOCUMENTS, ids=[doc.name for doc in DOCUMENTS]
)
def test_python_snippets_execute(document, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # snippets may write files (checkpoints)
    namespace: dict[str, object] = {}
    ran = 0
    for line_number, language, source in collect_blocks(document):
        if language != "python":
            continue
        compiled = compile(source, f"{document.name}:{line_number}", "exec")
        try:
            with contextlib.redirect_stdout(io.StringIO()):
                exec(compiled, namespace)  # noqa: S102 - the point of the test
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{document.name} snippet at line {line_number} failed: "
                f"{type(error).__name__}: {error}"
            )
        ran += 1
    assert ran > 0, f"{document} has no python blocks"


@pytest.mark.parametrize(
    "document", DOCUMENTS, ids=[doc.name for doc in DOCUMENTS]
)
def test_bash_snippets_parse(document):
    bash = "/bin/bash"
    if not Path(bash).exists():  # pragma: no cover - exotic CI image
        pytest.skip("bash not available")
    for line_number, language, source in collect_blocks(document):
        if language != "bash":
            continue
        proc = subprocess.run(
            [bash, "-n"], input=source, capture_output=True, text=True
        )
        assert proc.returncode == 0, (
            f"{document.name} bash snippet at line {line_number} "
            f"does not parse: {proc.stderr}"
        )


def test_snippets_run_under_current_interpreter():
    """The docs promise ``python >= 3.10``; make sure the gate runs on it."""
    assert sys.version_info >= (3, 10)
