"""Documentation health gates: API reference freshness, link integrity.

These are the test-suite versions of ``make docs-check`` and
``make linkcheck``: CI fails when ``docs/API.md`` drifts from the source
tree or a Markdown link/anchor breaks.
"""

from __future__ import annotations

from pathlib import Path

from repro.docs import (
    GENERATED_BANNER,
    check_links,
    generate_api_markdown,
    iter_source_modules,
)

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src"


def _docs_files() -> list[Path]:
    return [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def test_api_reference_is_fresh():
    committed = (ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    generated = generate_api_markdown(SRC)
    assert GENERATED_BANNER in committed
    assert committed == generated, (
        "docs/API.md is stale; regenerate with `python -m repro.docs` "
        "(or `make docs`)"
    )


def test_generator_is_deterministic():
    assert generate_api_markdown(SRC) == generate_api_markdown(SRC)


def test_generator_covers_every_package():
    names = [name for name, __ in iter_source_modules(SRC)]
    assert "repro" in names
    for package in ("repro.core", "repro.engine", "repro.obs", "repro.docs"):
        assert package in names
    assert names == sorted(names)
    assert not any(name.endswith("__main__") for name in names)


def test_markdown_links_resolve():
    problems = check_links(_docs_files())
    assert problems == [], "\n".join(problems)


def test_docs_reference_observability_and_glossary():
    """The new documents exist and are reachable from the entry points."""
    assert (ROOT / "docs" / "OBSERVABILITY.md").exists()
    assert (ROOT / "docs" / "GLOSSARY.md").exists()
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    assert "OBSERVABILITY.md" in readme
    assert "GLOSSARY.md" in readme
