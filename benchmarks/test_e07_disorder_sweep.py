"""E7: heavier delay tails widen AQ-K's advantage over max-delay buffering."""

from repro.bench.experiments import e07_disorder_sweep

from benchmarks.conftest import run_and_render


def test_e07_disorder_sweep(benchmark):
    result = run_and_render(benchmark, e07_disorder_sweep)

    for row in result.rows:
        # The quality target is met at every tail weight.
        assert row["aqk_error"] <= 0.05, row
        # AQ-K always beats the conservative baseline on latency.
        assert row["aqk_latency"] < row["mpk_latency"], row

    # The saving is large in the heavy-tail regime (the paper's sweet spot).
    heaviest = result.rows[-1]
    assert heaviest["latency_saving"] > 5.0
