"""E5: per-aggregate error models — all targets met; tuned models buy
latency over the naive model on non-mass aggregates."""

from repro.bench.experiments import e05_aggregates

from benchmarks.conftest import run_and_render

THETA = 0.05


def test_e05_aggregates(benchmark):
    result = run_and_render(benchmark, e05_aggregates)
    rows = {row["aggregate"]: row for row in result.rows}

    # Every aggregate meets the quality target under both models.
    for row in result.rows:
        assert row["model_error"] <= THETA, row
        assert row["naive_error"] <= THETA, row

    # For mass aggregates the tuned model IS the naive model: same runs.
    for name in ("count", "sum", "distinct"):
        assert rows[name]["model_latency"] == rows[name]["naive_latency"]

    # For mean-like and rank aggregates the tuned model exploits their
    # error tolerance: equal-or-lower latency than the naive model.
    for name in ("mean", "median", "p95", "max"):
        assert rows[name]["model_latency"] <= rows[name]["naive_latency"] * 1.05
    assert rows["mean"]["model_latency"] < rows["mean"]["naive_latency"]
