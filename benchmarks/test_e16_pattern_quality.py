"""E16: sequence patterns are the most disorder-sensitive query shape."""

from repro.bench.experiments import e16_pattern_quality
from repro.bench.report import is_monotone

from benchmarks.conftest import run_and_render


def test_e16_pattern_quality(benchmark):
    result = run_and_render(benchmark, e16_pattern_quality, scale=0.3)
    rows = {row["policy"]: row for row in result.rows}

    # Recall improves monotonically with slack across the quantile ladder.
    ladder = ["no-buffer", "k-slack(p50)", "k-slack(p95)", "k-slack(p99)", "mp-k-slack"]
    recalls = [rows[name]["match_recall"] for name in ladder]
    assert is_monotone(recalls, increasing=True, tolerance=0.02)

    # Patterns lose far more than window aggregates at zero slack (window
    # count error on the same delay mix is ~2%; pattern loss is ~20%)...
    assert rows["no-buffer"]["match_recall"] < 0.85
    # ...and the conservative policy recovers nearly everything.
    assert rows["mp-k-slack"]["match_recall"] > 0.99

    # Latency follows slack.
    latencies = [rows[name]["mean_match_latency"] for name in ladder]
    assert is_monotone(latencies, increasing=True, tolerance=0.05)

    # The quality-driven pattern meets its recall targets below the
    # conservative policy's slack.
    assert rows["quality(loss<=0.05)"]["match_recall"] >= 0.93
    assert rows["quality(loss<=0.01)"]["match_recall"] >= 0.97
    assert (
        rows["quality(loss<=0.05)"]["slack"] < rows["mp-k-slack"]["slack"] / 4
    )
