"""E9: latency-budget mode respects its bound; quality improves with budget."""

from repro.bench.experiments import e09_latency_budget
from repro.bench.report import is_monotone

from benchmarks.conftest import run_and_render


def test_e09_latency_budget(benchmark):
    result = run_and_render(benchmark, e09_latency_budget)

    for row in result.rows:
        # The slack never exceeds the budget.
        assert row["final_slack"] <= row["budget"] + 1e-9, row

    # Larger budgets buy strictly better (or equal) quality.
    errors = result.column("mean_error")
    assert is_monotone(errors, increasing=False, tolerance=0.1)
    assert errors[-1] < errors[0]
