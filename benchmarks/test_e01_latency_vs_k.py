"""E1: result latency vs slack K — latency grows ~linearly with K."""

from repro.bench.experiments import e01_latency_vs_k
from repro.bench.report import is_monotone

from benchmarks.conftest import run_and_render


def test_e01_latency_vs_k(benchmark):
    result = run_and_render(benchmark, e01_latency_vs_k)
    ks = result.column("k")
    latencies = result.column("mean_latency")
    buffered = result.column("max_buffered")

    # Latency increases monotonically with K...
    assert is_monotone(latencies, increasing=True)
    # ...and approaches K + constant (linear regime for large K).
    for k, latency in zip(ks, latencies):
        if k >= 1.0:
            assert k <= latency <= k + 1.0
    # Buffer occupancy grows with K as well.
    assert is_monotone(buffered, increasing=True)
