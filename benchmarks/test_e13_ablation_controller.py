"""E13: controller ablation — the estimator carries burst response; pure
feedback alone badly violates the target."""

from repro.bench.experiments import e13_ablation_controller

from benchmarks.conftest import run_and_render


def test_e13_ablation_controller(benchmark):
    result = run_and_render(benchmark, e13_ablation_controller)
    rows = {row["controller"]: row for row in result.rows}

    # Pure feedback (no estimator) reacts too slowly to the burst: it
    # violates the target while every estimator-based variant holds it.
    assert rows["feedback-only"]["mean_error"] > 0.05
    for name in ("estimator-only", "estimator+pi", "estimator+aimd"):
        assert rows[name]["mean_error"] <= 0.05, name

    # Feedback on top of the estimator buys latency over estimator-only.
    assert (
        rows["estimator+pi"]["mean_latency"]
        <= rows["estimator-only"]["mean_latency"] * 1.05
    )
