"""E2: result error vs slack K — error falls monotonically with K."""

from repro.bench.experiments import e02_error_vs_k
from repro.bench.report import is_monotone

from benchmarks.conftest import run_and_render


def test_e02_error_vs_k(benchmark):
    result = run_and_render(benchmark, e02_error_vs_k)
    errors = result.column("mean_error")
    recalls = result.column("recall")

    # Quality improves monotonically with buffering (small noise allowed).
    assert is_monotone(errors, increasing=False, tolerance=0.1)
    # The zero-slack end pays a visible error; deep buffering nearly none.
    assert errors[0] > 5 * errors[-1]
    # No windows are lost entirely at any K in this workload.
    assert all(recall > 0.99 for recall in recalls)
