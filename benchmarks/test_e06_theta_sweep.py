"""E6: latency decreases monotonically as the quality target loosens."""

from repro.bench.experiments import e06_theta_sweep
from repro.bench.report import is_monotone

from benchmarks.conftest import run_and_render


def test_e06_theta_sweep(benchmark):
    result = run_and_render(benchmark, e06_theta_sweep)
    latencies = result.column("mean_latency")
    slacks = result.column("final_slack")

    assert is_monotone(latencies, increasing=False, tolerance=0.1)
    assert is_monotone(slacks, increasing=False, tolerance=0.25)

    # Each run meets its own target on mean error.
    for row in result.rows:
        assert row["mean_error"] <= row["theta"] * 1.1, row
