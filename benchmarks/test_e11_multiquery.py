"""E11: one shared buffer serves all queries at per-query quality, using
less memory than private buffers."""

import re

from repro.bench.experiments import e11_multiquery

from benchmarks.conftest import run_and_render


def test_e11_multiquery(benchmark):
    result = run_and_render(benchmark, e11_multiquery)

    for row in result.rows:
        # Shared execution matches the private run's quality...
        assert row["shared_error"] <= row["theta"] * 1.2, row
        # ...and its latency (within noise).
        assert row["shared_latency"] <= row["private_latency"] * 1.25, row

    # Strict queries wait longer than loose ones under the shared buffer.
    latencies = [row["shared_latency"] for row in result.rows]  # theta ascending
    assert latencies[0] >= latencies[-1]

    # Memory: the shared buffer's peak is below the sum of private peaks.
    note = [n for n in result.notes if n.startswith("peak buffered")][0]
    shared, private = map(int, re.findall(r"=(\d+)", note))
    assert shared < private
