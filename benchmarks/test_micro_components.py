"""Micro-benchmarks of the engine's hot paths.

Unlike the experiment benchmarks (which time whole evaluation runs and
check result shapes), these time individual components with
pytest-benchmark's statistics so regressions in the per-element hot path
are visible.
"""

import numpy as np
import pytest

from repro.core.aqk import AQKSlackHandler
from repro.core.sampling import P2DelayBank, SlidingDelaySample
from repro.core.spec import QualityTarget
from repro.engine.aggregates import MeanAggregate, make_aggregate
from repro.engine.buffer import SortingBuffer
from repro.engine.handlers import KSlackHandler
from repro.engine.sketches import HyperLogLog, P2Quantile
from repro.engine.windows import SlidingWindowAssigner
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import generate_stream

N = 5000


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(3)
    return inject_disorder(
        generate_stream(duration=N / 100, rate=100, rng=rng),
        ExponentialDelay(0.3),
        rng,
    )


def test_sorting_buffer_push_release(benchmark, stream):
    def run():
        buffer = SortingBuffer()
        released = 0
        for i, element in enumerate(stream):
            buffer.push(element)
            if i % 10 == 0:
                released += len(buffer.release_until(element.event_time - 0.5))
        return released

    assert benchmark(run) > 0


def test_kslack_offer(benchmark, stream):
    def run():
        handler = KSlackHandler(0.5)
        released = 0
        for element in stream:
            released += len(handler.offer(element))
        return released

    assert benchmark(run) > 0


def test_aqk_offer(benchmark, stream):
    def run():
        handler = AQKSlackHandler(
            target=QualityTarget(0.05), aggregate=make_aggregate("count")
        )
        released = 0
        for element in stream:
            released += len(handler.offer(element))
        return released

    assert benchmark(run) > 0


def test_window_assignment(benchmark):
    assigner = SlidingWindowAssigner(size=10, slide=2)

    def run():
        total = 0
        for i in range(N):
            total += len(assigner.assign(i * 0.01))
        return total

    assert benchmark(run) > 0


def test_mean_aggregate_fold(benchmark):
    aggregate = MeanAggregate()
    values = list(np.random.default_rng(0).random(N))

    def run():
        accumulator = aggregate.create()
        for value in values:
            aggregate.add(accumulator, value)
        return aggregate.result(accumulator)

    assert benchmark(run) >= 0


def test_p2_quantile_observe(benchmark):
    values = list(np.random.default_rng(0).exponential(1.0, N))

    def run():
        sketch = P2Quantile(0.95)
        for value in values:
            sketch.observe(value)
        return sketch.value()

    assert benchmark(run) > 0


def test_sliding_delay_sample_quantile(benchmark):
    values = list(np.random.default_rng(0).exponential(1.0, N))

    def run():
        sample = SlidingDelaySample(capacity=2000)
        total = 0.0
        for i, value in enumerate(values):
            sample.observe(value)
            if i % 100 == 0:
                total += sample.quantile(0.95)
        return total

    assert benchmark(run) > 0


def test_p2_delay_bank_quantile(benchmark):
    values = list(np.random.default_rng(0).exponential(1.0, N))

    def run():
        bank = P2DelayBank()
        total = 0.0
        for i, value in enumerate(values):
            bank.observe(value)
            if i % 100 == 0:
                total += bank.quantile(0.95)
        return total

    assert benchmark(run) > 0


def test_hyperloglog_add(benchmark):
    def run():
        sketch = HyperLogLog(precision=12)
        for i in range(N):
            sketch.add(i % 1000)
        return sketch.estimate()

    assert benchmark(run) > 0


def test_naive_window_operator_throughput(benchmark, stream):
    from repro.engine.aggregate_op import WindowAggregateOperator
    from repro.engine.pipeline import run_pipeline
    from repro.engine.windows import SlidingWindowAssigner

    def run():
        operator = WindowAggregateOperator(
            SlidingWindowAssigner(10, 1),
            MeanAggregate(),
            KSlackHandler(0.5),
            track_feedback=False,
        )
        return len(run_pipeline(stream, operator).results)

    assert benchmark(run) > 0


def test_sliced_window_operator_throughput(benchmark, stream):
    from repro.engine.pipeline import run_pipeline
    from repro.engine.sliced_op import SlicedWindowAggregateOperator
    from repro.engine.windows import SlidingWindowAssigner

    def run():
        operator = SlicedWindowAggregateOperator(
            SlidingWindowAssigner(10, 1),
            MeanAggregate(),
            KSlackHandler(0.5),
            track_feedback=False,
        )
        return len(run_pipeline(stream, operator).results)

    assert benchmark(run) > 0


def test_retirement_large_horizon(benchmark, stream):
    """Retirement cost at a huge feedback horizon (nothing ever retires).

    The old implementation scanned every closed-window record per element,
    so cost grew with the horizon; the heap-based early exit makes this
    O(1) per element regardless of how much history is retained.
    """
    from repro.engine.aggregate_op import WindowAggregateOperator
    from repro.engine.pipeline import run_pipeline
    from repro.engine.windows import SlidingWindowAssigner

    def run():
        operator = WindowAggregateOperator(
            SlidingWindowAssigner(10, 1),
            MeanAggregate(),
            KSlackHandler(0.5),
            feedback_horizon=1e9,
        )
        return len(run_pipeline(stream, operator).results)

    assert benchmark(run) > 0


def test_sorting_buffer_bulk_release(benchmark, stream):
    """Bulk push + sort-and-split release vs the per-element heap path."""

    def run():
        buffer = SortingBuffer()
        released = 0
        for start in range(0, len(stream), 256):
            chunk = stream[start : start + 256]
            buffer.push_many(chunk)
            released += len(buffer.release_until(chunk[-1].event_time - 0.5))
        released += len(buffer.drain())
        return released

    assert benchmark(run) > 0


def test_sorting_buffer_push_many_in_order(benchmark):
    """In-order bulk pushes take the append-only fast path (no re-heapify).

    The batch is event-time sorted and extends the tail, so ``push_many``
    must extend the backing list directly; the assertion below verifies the
    fast path stayed a valid heap by draining in order.
    """
    ordered = [
        StreamElement(event_time=i * 0.01, value=float(i), seq=i) for i in range(N)
    ]
    chunks = [ordered[start : start + 256] for start in range(0, N, 256)]

    def run():
        buffer = SortingBuffer()
        for chunk in chunks:
            buffer.push_many(chunk)
        return len(buffer.release_until(ordered[-1].event_time))

    assert benchmark(run) == N

    # Correctness of the fast path: tail-extending pushes keep heap order.
    buffer = SortingBuffer()
    for chunk in chunks:
        buffer.push_many(chunk)
    drained = buffer.drain()
    assert [el.seq for el in drained] == [el.seq for el in ordered]


def test_kslack_offer_many(benchmark, stream):
    """Bulk K-slack offer: amortized clock/frontier math via numpy."""

    def run():
        handler = KSlackHandler(0.5)
        released = 0
        for start in range(0, len(stream), 256):
            out, __ = handler.offer_many(stream[start : start + 256])
            released += len(out)
        return released

    assert benchmark(run) > 0


def test_batched_window_operator_throughput(benchmark, stream):
    """Batched naive operator: the E18 fast path in isolation."""
    from repro.engine.aggregate_op import WindowAggregateOperator
    from repro.engine.pipeline import run_pipeline
    from repro.engine.windows import SlidingWindowAssigner

    def run():
        operator = WindowAggregateOperator(
            SlidingWindowAssigner(10, 1),
            MeanAggregate(),
            KSlackHandler(0.5),
            track_feedback=False,
        )
        return len(run_pipeline(stream, operator, batch_size=512).results)

    assert benchmark(run) > 0


def test_sanitized_window_operator_throughput(benchmark, stream):
    """StreamSan overhead probe: the scalar pipeline with all checkers on.

    Compare against ``test_naive_window_operator_throughput`` (same
    operator, same stream, sanitize off) to read the checker overhead; the
    acceptance bar for the sanitizer is <10% on this workload (see
    ``docs/ANALYSIS.md``).  The divergence probe is deliberately off here —
    it deep-copies the operator and is priced separately.
    """
    from repro.engine.aggregate_op import WindowAggregateOperator
    from repro.engine.pipeline import run_pipeline
    from repro.engine.windows import SlidingWindowAssigner

    def run():
        operator = WindowAggregateOperator(
            SlidingWindowAssigner(10, 1),
            MeanAggregate(),
            KSlackHandler(0.5),
            track_feedback=False,
        )
        return len(run_pipeline(stream, operator, sanitize=True).results)

    assert benchmark(run) > 0
