"""Shared helpers for the benchmark suite.

Each benchmark runs one experiment from :mod:`repro.bench.experiments` at a
reduced workload scale (the full-scale tables are produced with
``python -m repro.bench.experiments all``), times it via pytest-benchmark,
prints the paper-style table, and asserts the qualitative *shape* the paper
reports — who wins, monotonicity, crossovers — rather than absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.bench.report import ExperimentResult, render_table

# Workload scale for benchmark runs (fraction of full experiment duration).
BENCH_SCALE = 0.2


def run_and_render(benchmark, experiment, scale: float = BENCH_SCALE) -> ExperimentResult:
    """Time one experiment end-to-end and print its table."""
    result = benchmark.pedantic(experiment, kwargs={"scale": scale}, rounds=1, iterations=1)
    print()
    print(render_table(result))
    return result


@pytest.fixture
def bench_scale() -> float:
    return BENCH_SCALE
