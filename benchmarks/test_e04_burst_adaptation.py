"""E4: adaptation timeline — slack follows the delay burst up and down."""

import numpy as np

from repro.bench.experiments import e04_burst_adaptation

from benchmarks.conftest import run_and_render


def test_e04_burst_adaptation(benchmark):
    # Needs enough post-burst runway for the delay sample to turn over, so
    # it runs at a larger scale than the other benchmarks.
    result = run_and_render(benchmark, e04_burst_adaptation, scale=0.35)
    rows = result.rows
    n = len(rows)
    # The schedule puts the burst in the middle third of the run.
    calm_before = [r["slack"] for r in rows[1 : n // 3] if r["slack"] is not None]
    in_burst = [
        r["slack"] for r in rows[n // 3 + 1 : 2 * n // 3 + 1] if r["slack"] is not None
    ]
    calm_after = [r["slack"] for r in rows[-2:] if r["slack"] is not None]

    assert calm_before and in_burst and calm_after
    # Slack climbs during the burst and decays afterwards.
    assert np.median(in_burst) > 3 * np.median(calm_before)
    assert np.median(calm_after) < np.median(in_burst) / 3

    # Quality stays in the target's ballpark even across the regime change.
    errors = [r["mean_error"] for r in rows if r["mean_error"] is not None]
    assert np.mean(errors) < 0.1
