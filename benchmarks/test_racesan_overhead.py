"""RaceSan overhead guard: off is free, on stays within budget.

``run_pipeline(sanitize=False)`` performs no wrapping at all — RaceSan
costs literally zero when disabled — so the "off" budget (< 2%) is
asserted as off-vs-off run-to-run noise, the same methodology as the
tracing guard in ``test_obs_overhead.py``.  With ``sanitize="race"`` the
GuardedProxy records one lockset check per operator method call (not per
attribute access), which must stay under 25% on the E18-style quick
workload (sliding 20s/1s, mean, K-slack 1s).
"""

import time

import numpy as np
import pytest

from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import make_aggregate
from repro.engine.handlers import KSlackHandler
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.generators import generate_stream

N = 8000


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(18)
    return inject_disorder(
        generate_stream(duration=N / 200, rate=200, rng=rng),
        ExponentialDelay(0.3),
        rng,
    )


def make_operator():
    return WindowAggregateOperator(
        SlidingWindowAssigner(size=20.0, slide=1.0),
        make_aggregate("mean"),
        KSlackHandler(1.0),
    )


def run_once(stream, sanitize):
    return run_pipeline(list(stream), make_operator(), sanitize=sanitize)


def test_pipeline_racesan_off(benchmark, stream):
    """Baseline medians with sanitize=False (for the docs table)."""
    output = benchmark(lambda: run_once(stream, False))
    assert output.metrics.n_elements == len(stream)


def test_pipeline_racesan_on(benchmark, stream):
    output = benchmark(lambda: run_once(stream, "race"))
    assert output.metrics.n_elements == len(stream)


def _median_seconds(stream, sanitize, repeats=9):
    timings = []
    for __ in range(repeats):
        start = time.perf_counter()
        run_once(stream, sanitize)
        timings.append(time.perf_counter() - start)
    timings.sort()
    return timings[len(timings) // 2]


def test_racesan_results_identical(stream):
    """The guarded run emits bit-identical results (cheap re-assertion)."""
    assert run_once(stream, "race").results == run_once(stream, False).results


def test_racesan_overhead_within_budget(stream):
    """Race mode stays under 25%; off-vs-off noise bounds the off budget."""
    for __ in range(2):  # warm caches and the allocator
        run_once(stream, False)
        run_once(stream, "race")

    off_a = _median_seconds(stream, False)
    on = _median_seconds(stream, "race")
    off_b = _median_seconds(stream, False)

    off = min(off_a, off_b)
    noise = abs(off_a - off_b) / off
    on_overhead = on / off - 1.0

    # sanitize=False adds no wrapper, no hook, no branch beyond the one
    # dispatch check — the < 2% off budget holds as long as two disjoint
    # off medians agree to within it.
    assert noise < 0.02, f"off-vs-off noise {noise:.1%} exceeds 2%"
    assert on_overhead < 0.25, f"race-mode overhead {on_overhead:.1%} >= 25%"
