"""E15: quality-driven joins meet recall targets far below worst-case slack."""

from repro.bench.experiments import e15_join_quality

from benchmarks.conftest import run_and_render


def test_e15_join_quality(benchmark):
    result = run_and_render(benchmark, e15_join_quality, scale=0.3)
    rows = {row["policy"]: row for row in result.rows}

    # Joins are much more disorder-sensitive than window aggregates: the
    # eager baseline loses a large share of pairs.
    assert rows["no-buffer"]["pair_recall"] < 0.8

    # The quality-driven join meets its recall target (small tolerance for
    # the cold-start transient of a short run)...
    assert rows["quality(loss<=0.05)"]["pair_recall"] >= 0.93
    assert rows["quality(loss<=0.01)"]["pair_recall"] >= 0.97

    # ...at far less slack than conservative max-delay buffering.
    assert (
        rows["quality(loss<=0.05)"]["final_slack"]
        < rows["mp-k-slack"]["final_slack"] / 4
    )

    # Stricter targets cost more slack.
    assert (
        rows["quality(loss<=0.01)"]["final_slack"]
        >= rows["quality(loss<=0.05)"]["final_slack"]
    )
