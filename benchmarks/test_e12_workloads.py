"""E12: domain workloads end-to-end — targets met on all three domains."""

from repro.bench.experiments import e12_workloads

from benchmarks.conftest import run_and_render


def test_e12_workloads(benchmark):
    result = run_and_render(benchmark, e12_workloads)
    assert len(result.rows) == 3

    for row in result.rows:
        # The quality target is met on every domain.
        assert row["aqk_error"] <= 0.05, row
        # AQ-K is never worse on quality than the eager baseline.
        assert row["aqk_error"] <= row["nobuf_error"] * 1.05, row
