"""E18: batched execution equals scalar semantics at higher throughput."""

from repro.bench.experiments import e18_batched_throughput

from benchmarks.conftest import run_and_render


def test_e18_batched_throughput(benchmark):
    result = run_and_render(benchmark, e18_batched_throughput, scale=0.3)

    for row in result.rows:
        # Batching never changes results.
        assert row["results_equal"], row

    by_operator = {row["operator"]: row for row in result.rows}
    # The headline claim: >=2x single-thread throughput on the naive
    # operator at overlap 20; the sliced operator (already O(1) per
    # element) still gains from bulk release/fold but less.
    assert by_operator["naive"]["speedup"] > 2.0
    assert by_operator["sliced"]["speedup"] > 1.2
    # Batching composes with the adaptive handler (feedback on).
    assert by_operator["naive+aq-k"]["speedup"] > 2.0
