"""E17: sliced execution equals naive semantics at higher throughput."""

from repro.bench.experiments import e17_sliced_execution

from benchmarks.conftest import run_and_render


def test_e17_sliced_execution(benchmark):
    result = run_and_render(benchmark, e17_sliced_execution, scale=0.3)

    for row in result.rows:
        # The optimization never changes results.
        assert row["results_equal"], row

    # At high window overlap the sliced path clearly wins; at overlap 1
    # (tumbling) the two paths do the same work.
    by_overlap = {row["overlap"]: row for row in result.rows}
    assert by_overlap[20.0]["speedup"] > 1.5
    assert by_overlap[10.0]["speedup"] > 1.2
    assert by_overlap[1.0]["speedup"] > 0.5  # no large regression
