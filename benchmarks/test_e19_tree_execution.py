"""E19: tree execution beats sliced at high overlap; shared slices beat
per-query pipelines — all with identical results."""

from repro.bench.experiments import e19_tree_execution

from benchmarks.conftest import run_and_render


def test_e19_tree_execution(benchmark):
    result = run_and_render(benchmark, e19_tree_execution, scale=0.3)

    for row in result.rows:
        # Neither the tree nor the shared store ever changes results.
        assert row["results_equal"], row

    by_config = {row["config"]: row for row in result.rows}
    # The headline claims: the tree's O(log overlap) closes overtake the
    # sliced operator's O(overlap) chain merges as overlap grows, and one
    # shared slice store outruns a naive pipeline per query.
    assert by_config["overlap=64"]["tree_over_sliced"] > 1.0
    assert by_config["overlap=256"]["tree_over_sliced"] > 2.0
    assert by_config["multi-query(4xAQ-K)"]["shared_over_naive"] > 2.0
