"""E14: sampler ablation — recency-biased sampling recovers after the
burst; the uniform reservoir over-buffers indefinitely."""

from repro.bench.experiments import e14_ablation_sampling

from benchmarks.conftest import run_and_render


def test_e14_ablation_sampling(benchmark):
    # Needs enough post-burst runway for the sliding sample to recover, so
    # it runs at a larger scale than the other benchmarks.
    result = run_and_render(benchmark, e14_ablation_sampling, scale=0.35)
    rows = {row["sampler"]: row for row in result.rows}

    # After the burst ends, the sliding sampler's slack returns near the
    # calm level while the reservoir remains inflated by stale burst
    # delays.
    assert rows["sliding"]["final_slack"] < rows["reservoir"]["final_slack"] / 2
