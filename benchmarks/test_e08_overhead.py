"""E8: estimation/adaptation overhead is a modest constant factor."""

from repro.bench.experiments import e08_overhead

from benchmarks.conftest import run_and_render


def test_e08_overhead(benchmark):
    result = run_and_render(benchmark, e08_overhead)
    rows = {row["policy"]: row for row in result.rows}

    # Adaptive machinery costs at most ~2.5x the zero-overhead baseline
    # (wall-clock on the Python simulator; the paper's claim is "small
    # constant factor").
    assert rows["aq-k"]["relative_throughput"] > 0.4
    # Plain K-slack buffering costs less than adaptation.
    assert rows["k-slack"]["relative_throughput"] >= rows["aq-k"]["relative_throughput"] * 0.9
