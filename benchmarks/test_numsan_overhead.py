"""NumSan overhead guard: off is free, on stays within budget.

``run_pipeline(sanitize=False)`` performs no wrapping at all — NumSan
costs literally zero when disabled — so the "off" budget (< 2%) is
asserted as off-vs-off run-to-run noise, the same methodology as the
RaceSan guard in ``test_racesan_overhead.py``.  With ``sanitize="numeric"``
the shadow aggregate mirrors each value into a retained list and
recomputes every extracted window through the ``fsum`` reference (one
``Fraction`` evaluation per 16 checked windows), which must stay under
25% on the E18-style quick workload (sliding 20s/1s, mean, K-slack 1s).
"""

import time

import numpy as np
import pytest

from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import make_aggregate
from repro.engine.handlers import KSlackHandler
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.generators import generate_stream

N = 8000


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(18)
    return inject_disorder(
        generate_stream(duration=N / 200, rate=200, rng=rng),
        ExponentialDelay(0.3),
        rng,
    )


def make_operator():
    return WindowAggregateOperator(
        SlidingWindowAssigner(size=20.0, slide=1.0),
        make_aggregate("mean"),
        KSlackHandler(1.0),
    )


def run_once(stream, sanitize):
    return run_pipeline(list(stream), make_operator(), sanitize=sanitize)


def test_pipeline_numsan_off(benchmark, stream):
    """Baseline medians with sanitize=False (for the docs table)."""
    output = benchmark(lambda: run_once(stream, False))
    assert output.metrics.n_elements == len(stream)


def test_pipeline_numsan_on(benchmark, stream):
    output = benchmark(lambda: run_once(stream, "numeric"))
    assert output.metrics.n_elements == len(stream)


def _timed_seconds(stream, sanitize):
    start = time.perf_counter()
    run_once(stream, sanitize)
    return time.perf_counter() - start


def test_numsan_results_identical(stream):
    """The shadowed run emits bit-identical results (cheap re-assertion)."""
    assert run_once(stream, "numeric").results == run_once(stream, False).results


def test_numsan_overhead_within_budget(stream):
    """Numeric mode stays under 25%; interleaved off runs bound the off budget.

    Unlike the RaceSan guard, this compares *minima* over interleaved
    off/on runs rather than block medians: scheduler noise on a shared
    box only ever adds time, so the minimum of each series converges on
    the true cost while a median comparison inherits whichever noise
    spike landed inside its block.  Interleaving keeps slow background
    drift from biasing one series over the other.
    """
    for __ in range(2):  # warm caches and the allocator
        run_once(stream, False)
        run_once(stream, "numeric")

    offs, ons = [], []
    # Minima only converge downward, so keep sampling until disjoint
    # halves of the off series agree at the floor (bounded).
    while True:
        for __ in range(9 if not offs else 4):
            offs.append(_timed_seconds(stream, False))
            ons.append(_timed_seconds(stream, "numeric"))
        off = min(offs)
        noise = abs(min(offs[0::2]) - min(offs[1::2])) / off
        if noise < 0.02 or len(offs) >= 25:
            break
    on_overhead = min(ons) / off - 1.0

    assert on_overhead < 0.25, f"numeric-mode overhead {on_overhead:.1%} >= 25%"
    # sanitize=False adds no wrapper, no mirror list, no branch beyond
    # the one dispatch check — the < 2% off budget holds as long as two
    # disjoint halves of the off series agree to within it at the floor.
    # When even the floor won't stabilise the box cannot resolve a 2%
    # signal at all, so the off gate is unmeasurable here, not violated.
    if noise >= 0.02:
        pytest.skip(
            f"off-run floor unstable at {noise:.1%} after {len(offs)} "
            f"runs; box too noisy to resolve the 2% off budget "
            f"(on-budget held at {on_overhead:.1%})"
        )
