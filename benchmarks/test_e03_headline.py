"""E3: the headline table — AQ-K meets targets at a fraction of the
conservative baseline's latency."""

from repro.bench.experiments import e03_headline

from benchmarks.conftest import run_and_render


def test_e03_headline(benchmark):
    result = run_and_render(benchmark, e03_headline)
    rows = {row["policy"]: row for row in result.rows}

    no_buffer = rows["no-buffer"]
    conservative = rows["mp-k-slack"]
    aqk_loose = rows["aq-k(theta=0.05)"]
    aqk_strict = rows["aq-k(theta=0.01)"]

    # The conservative baseline is near-exact but pays worst-case latency.
    assert conservative["mean_error"] < 0.001
    assert conservative["mean_latency"] > 5 * aqk_loose["mean_latency"]

    # AQ-K meets its targets.
    assert aqk_loose["mean_error"] <= 0.05
    assert aqk_strict["mean_error"] <= 0.015

    # The strict target costs more latency than the loose one.
    assert aqk_strict["mean_latency"] >= aqk_loose["mean_latency"]

    # No-buffer is fastest; its error exceeds the strict target.
    assert no_buffer["mean_latency"] <= aqk_loose["mean_latency"]
    assert no_buffer["mean_error"] > 0.01
