"""Tracing overhead guard: the null tracer must be (nearly) free.

The observability layer's contract (docs/OBSERVABILITY.md) is that an
instrumented engine with tracing *off* pays only one attribute check per
hook site, and with tracing *on* the recorder stays cheap enough for
production use.  These benchmarks measure both against the K-slack window
pipeline and fail when the ratio drifts past the budget:

* tracing off (``NULL_TRACER``) vs. the same run — the comparison run
  also carries the null tracer, so this asserts an absolute ceiling on
  run-to-run noise *and* records the median timings pytest-benchmark
  prints for the documentation table;
* tracing on (``TraceRecorder``) vs. off — budget < 25%.

The off-overhead budget of < 5% cannot be measured *within* one code
base (the hooks are always compiled in); it was established against the
pre-instrumentation revision and is re-checked here as off-vs-off noise
plus the recorded medians in docs/OBSERVABILITY.md.
"""

import time

import numpy as np
import pytest

from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import make_aggregate
from repro.engine.handlers import KSlackHandler
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.obs.trace import TraceRecorder
from repro.streams.delay import ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.generators import generate_stream

N = 8000


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(11)
    return inject_disorder(
        generate_stream(duration=N / 200, rate=200, rng=rng),
        ExponentialDelay(0.3),
        rng,
    )


def make_operator():
    return WindowAggregateOperator(
        SlidingWindowAssigner(size=4.0, slide=1.0),
        make_aggregate("mean"),
        KSlackHandler(1.0),
    )


def run_traced(stream, recorder):
    return run_pipeline(list(stream), make_operator(), trace=recorder)


def test_pipeline_tracing_off(benchmark, stream):
    """Baseline medians with the default NULL_TRACER (for the docs table)."""
    output = benchmark(lambda: run_traced(stream, None))
    assert output.metrics.n_elements == len(stream)


def test_pipeline_tracing_on(benchmark, stream):
    def run():
        return run_traced(stream, TraceRecorder())

    output = benchmark(run)
    assert output.metrics.n_elements == len(stream)


def _median_seconds(stream, recorder_factory, repeats=7):
    timings = []
    for __ in range(repeats):
        start = time.perf_counter()
        run_traced(stream, recorder_factory())
        timings.append(time.perf_counter() - start)
    timings.sort()
    return timings[len(timings) // 2]


def test_tracing_overhead_within_budget(stream):
    """Recorder-on stays under the 25% budget; off-vs-off under 5% noise."""
    # Interleave warmup to stabilize caches/allocator.
    for __ in range(2):
        run_traced(stream, None)
        run_traced(stream, TraceRecorder())

    off_a = _median_seconds(stream, lambda: None)
    on = _median_seconds(stream, TraceRecorder)
    off_b = _median_seconds(stream, lambda: None)

    off = min(off_a, off_b)
    noise = abs(off_a - off_b) / off
    on_overhead = on / off - 1.0

    # The two "off" medians bracket run-to-run noise; the documented < 5%
    # off-budget holds as long as noise stays well inside it.
    assert noise < 0.05, f"off-vs-off noise {noise:.1%} exceeds 5%"
    assert on_overhead < 0.25, f"tracing-on overhead {on_overhead:.1%} >= 25%"
