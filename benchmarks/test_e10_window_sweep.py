"""E10: window/slide sensitivity — long windows absorb lateness; short
windows are the hard case."""

from repro.bench.experiments import e10_window_sweep
from repro.bench.report import is_monotone

from benchmarks.conftest import run_and_render


def test_e10_window_sweep(benchmark):
    result = run_and_render(benchmark, e10_window_sweep)

    # Error shrinks as windows grow (late mass is a smaller fraction).
    errors = result.column("mean_error")
    assert is_monotone(errors, increasing=False, tolerance=0.15)

    # The largest window is near-exact; the smallest is the hard case.
    assert errors[-1] < 0.01
    assert errors[0] > errors[-1]
