"""E21: process-pool shards escape the GIL, with results bit-identical
to the thread executor for every shard count.  The throughput headline
(process(4) beats the single tree) only applies on runners with at least
4 cores, so it is asserted conditionally and always recorded."""

import os

from repro.bench.experiments import e21_process_throughput

from benchmarks.conftest import run_and_render


def test_e21_process_throughput(benchmark):
    result = run_and_render(benchmark, e21_process_throughput, scale=0.3)

    for row in result.rows:
        # Sharding and executor choice never change per-group values.
        assert row["results_equal"], row
        # The executor-independence half of the shard contract: each
        # process(n) run is bit-identical to its thread(n) twin.
        if row["identical_to_thread"] is not None:
            assert row["identical_to_thread"], row
        assert row["eps"] > 0

    by_config = {row["config"]: row for row in result.rows}
    cpu_count = os.cpu_count() or 1
    # The multicore headline: process(4) beats the single tree.  A box
    # with fewer than 4 cores physically cannot show it; the quick-bench
    # artifact (BENCH_e21.json) records the gate as skipped there.
    if cpu_count >= 4:
        assert by_config["process(4)"]["speedup_vs_tree"] > 1.0
    if cpu_count >= 2:
        assert (
            by_config["process(2)"]["eps"] >= by_config["thread(2)"]["eps"]
        )
