"""E20: sharded execution beats the single sliced pipeline at high
overlap, with per-group values identical across every configuration."""

from repro.bench.experiments import e20_sharded_throughput

from benchmarks.conftest import run_and_render


def test_e20_sharded_throughput(benchmark):
    result = run_and_render(benchmark, e20_sharded_throughput, scale=0.3)

    for row in result.rows:
        # Sharding never changes per-group values or counts.
        assert row["results_equal"], row

    by_config = {row["config"]: row for row in result.rows}
    # The headline claim: at overlap 64, four shards of per-key trees beat
    # the single sliced pipeline's O(overlap) chain merges even with the
    # routing and merge stages included.  (The speedup is algorithmic
    # under the GIL — fewer windows per shard — not core-parallelism.)
    assert by_config["sharded(4) tree"]["speedup_vs_sliced"] > 1.0
    # Sanity on the measurement itself: every configuration processed the
    # same stream, so throughput must be finite and positive.
    for row in result.rows:
        assert row["eps"] > 0
