"""Operating a query over multiple gateways, with checkpointed restart.

A fleet of sensors reports through three gateways with different network
paths (one is slow and occasionally silent).  This example shows the
operational machinery a production deployment needs around the core
operator:

* merging per-gateway streams into one arrival-ordered input,
* the multi-source frontier (min over gateways, idle-gateway timeout),
* checkpointing the running operator and resuming it without losing
  window state — the resumed run finishes with results identical to an
  uninterrupted one.

Run:  python examples/multi_gateway_operations.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.engine import (
    CountAggregate,
    MultiSourceWatermarkHandler,
    WindowAggregateOperator,
    load_checkpoint,
    save_checkpoint,
    tumbling,
)
from repro.streams import (
    ConstantDelay,
    ExponentialDelay,
    ShiftedDelay,
    StreamElement,
    generate_stream,
    inject_disorder,
    merge_streams,
)


def gateway_stream(rng, gateway, duration, delay_model):
    base = generate_stream(duration=duration, rate=40, rng=rng)
    tagged = [
        StreamElement(event_time=el.event_time, value=el.value, key=gateway, seq=el.seq)
        for el in base
    ]
    return inject_disorder(tagged, delay_model, rng)


def gateway_of(element: StreamElement) -> object:
    # Module-level (not a lambda) so the operator stays checkpointable.
    return element.key


def build_operator():
    handler = MultiSourceWatermarkHandler(
        source_of=gateway_of,
        idle_timeout=10.0,
        expected_sources={"gw-east", "gw-west", "gw-sat"},
    )
    return WindowAggregateOperator(tumbling(5.0), CountAggregate(), handler)


def main(duration: float = 120.0) -> None:
    rng = np.random.default_rng(5)
    streams = [
        gateway_stream(rng, "gw-east", duration, ConstantDelay(0.05)),
        gateway_stream(rng, "gw-west", duration, ExponentialDelay(0.3)),
        gateway_stream(
            rng, "gw-sat", duration, ShiftedDelay(1.5, ExponentialDelay(0.5))
        ),
    ]
    merged = merge_streams(streams)
    print(
        f"merged {len(merged)} readings from 3 gateways "
        f"({', '.join(sorted({e.key for e in merged}))})\n"
    )

    # --- uninterrupted reference run -------------------------------- #
    reference_op = build_operator()
    reference = []
    for element in merged:
        reference.extend(reference_op.process(element))
    reference.extend(reference_op.finish())

    # --- checkpointed run: process half, restart, resume ------------- #
    half = len(merged) // 2
    operator = build_operator()
    results = []
    for element in merged[:half]:
        results.extend(operator.process(element))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "query.ckpt"
        n_bytes = save_checkpoint(operator, path)
        print(f"checkpointed after {half} elements "
              f"({n_bytes} bytes, {len(results)} windows already emitted)")
        del operator  # "process restart"
        resumed = load_checkpoint(path)

    for element in merged[half:]:
        results.extend(resumed.process(element))
    results.extend(resumed.finish())

    identical = [
        (a.key, a.window, a.value) == (b.key, b.window, b.value)
        for a, b in zip(results, reference)
    ]
    print(f"resumed run emitted {len(results)} windows; "
          f"reference emitted {len(reference)}")
    print(f"results identical to uninterrupted run: "
          f"{all(identical) and len(results) == len(reference)}")

    handler = resumed.handler
    print(f"\nmulti-source frontier: min over {handler.source_count()} gateways"
          f" (idle right now: {handler.idle_sources() or 'none'})")
    slowest = max(r.latency for r in reference if not r.flushed)
    print(f"worst window latency (pinned by the satellite gateway): "
          f"{slowest:.2f}s")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=None,
                        help="event-time span in seconds")
    args = parser.parse_args()
    main(**({} if args.duration is None else {"duration": args.duration}))
