"""Quickstart: quality-driven query execution in ~40 lines.

Generates an out-of-order stream, runs the same sliding-window count query
under four disorder-handling policies, and prints the latency/quality
tradeoff — the paper's core comparison — as a small table.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ContinuousQuery, sliding
from repro.streams import (
    ExponentialDelay,
    MixtureDelay,
    ParetoDelay,
    generate_stream,
    inject_disorder,
    measure_disorder,
)


def main(duration: float = 240.0) -> None:
    rng = np.random.default_rng(42)

    # A 4-minute stream at 100 events/s whose delays mix a fast path with a
    # heavy Pareto tail -- the regime where buffering policy matters most.
    delays = MixtureDelay(
        [(0.9, ExponentialDelay(0.2)), (0.1, ParetoDelay(shape=1.8, scale=1.0))]
    )
    stream = inject_disorder(
        generate_stream(duration=duration, rate=100, rng=rng), delays, rng
    )
    stats = measure_disorder(stream)
    print(
        f"stream: {stats.n_elements} elements, "
        f"{stats.out_of_order_fraction:.0%} out of order, "
        f"max delay {stats.max_delay:.1f}s\n"
    )

    def query():
        return (
            ContinuousQuery()
            .from_elements(stream)
            .window(sliding(10, 2))
            .aggregate("count")
        )

    runs = {
        "no buffering (fast, wrong)": query().without_buffering(),
        "max-delay buffering (exact, slow)": query().with_max_delay_slack(),
        "quality-driven, error <= 5%": query().with_quality(0.05),
        "quality-driven, error <= 1%": query().with_quality(0.01),
    }

    print(f"{'policy':<36} {'mean error':>10} {'mean latency':>13}")
    for label, built in runs.items():
        run = built.run(assess=True, threshold=0.05)
        print(
            f"{label:<36} {run.report.mean_error:>9.4f} "
            f"{run.latency.mean:>12.2f}s"
        )

    print(
        "\nThe quality-driven runs meet their error targets at a fraction of"
        "\nthe conservative baseline's latency -- the paper's headline result."
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=None,
                        help="event-time span in seconds")
    args = parser.parse_args()
    main(**({} if args.duration is None else {"duration": args.duration}))
