"""Financial monitoring: per-symbol price averages under a quality SLA.

A market-data feed delivers ticks out of order (retried packets arrive
seconds late).  A dashboard needs 10-second average prices per symbol that
are at most 2% off, as fresh as possible.  This example shows:

* the domain workload generator (random-walk prices, heavy-tailed delays),
* a keyed windowed query under a quality target,
* inspecting the adaptation log and the per-symbol results.

Run:  python examples/financial_monitoring.py
"""

import numpy as np

from repro import ContinuousQuery, sliding
from repro.workloads import financial_ticks


def main(duration: float = 300.0) -> None:
    rng = np.random.default_rng(7)
    stream = financial_ticks(duration=duration, rate=200, rng=rng)
    print(f"replaying {len(stream)} ticks over {max(e.event_time for e in stream):.0f}s "
          f"of market time for symbols "
          f"{sorted({e.key for e in stream})}\n")

    run = (
        ContinuousQuery()
        .from_elements(stream)
        .window(sliding(10, 2))
        .aggregate("mean")
        .with_quality(0.02)  # dashboard SLA: <= 2% average-price error
        .run(assess=True)
    )

    report = run.report
    print("quality against the complete (late-corrected) feed:")
    print(f"  windows scored      : {report.n_oracle_windows}")
    print(f"  mean relative error : {report.mean_error:.5f}  (target 0.02)")
    print(f"  p95 relative error  : {report.p95_error:.5f}")
    print(f"  windows over target : {report.violation_fraction:.1%}")
    print(f"  freshness (latency) : mean {run.latency.mean:.2f}s, "
          f"p95 {run.latency.p95:.2f}s")

    handler = run.handler
    print(f"\nadaptive buffering: {len(handler.adaptations)} adaptation rounds, "
          f"final slack {handler.current_slack * 1000:.0f}ms")
    print("last five rounds (slack chosen per round):")
    for record in handler.adaptations[-5:]:
        print(
            f"  t={record.arrival_time:7.1f}s  allowed-late={record.allowed_late_fraction:.4f}"
            f"  K-est={record.k_estimate:.3f}s  K-applied={record.k_applied:.3f}s"
        )

    # The freshest view a dashboard would render: latest window per symbol.
    latest = {}
    for result in run.results:
        if not result.flushed:
            latest[result.key] = result
    print("\nlatest 10s average price per symbol:")
    for symbol in sorted(latest):
        result = latest[symbol]
        print(
            f"  {symbol:<6} {result.value:8.2f}  "
            f"(window ending {result.window.end:.0f}s, {result.count} ticks)"
        )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=None,
                        help="event-time span in seconds")
    args = parser.parse_args()
    main(**({} if args.duration is None else {"duration": args.duration}))
