"""Sensor fleet with a gateway outage: watching the system adapt.

A sensor grid reports through a gateway whose latency explodes for 100
seconds mid-run (queueing during an outage).  The quality-driven buffer
must inflate its slack during the burst to keep the 5% error target and
deflate afterwards to restore freshness.  This example prints the
adaptation timeline as a small ASCII chart.

Run:  python examples/sensor_outage.py
"""

import numpy as np

from repro import ContinuousQuery, sliding
from repro.core.quality import error_timeline
from repro.engine.oracle import oracle_results
from repro.core.quality import assess_quality
from repro.workloads import sensor_delay_model, sensor_readings


def bar(value: float, scale: float, width: int = 40) -> str:
    if scale <= 0:
        return ""
    filled = min(width, int(round(value / scale * width)))
    return "#" * filled


def main(duration: float = 450.0) -> None:
    rng = np.random.default_rng(11)
    burst_start, burst_end = duration / 3, duration * 5 / 9
    model = sensor_delay_model(burst_start=burst_start, burst_end=burst_end, burst_mu=1.5)
    stream = sensor_readings(
        duration=duration, rate=120, rng=rng, n_sensors=8, delay_model=model
    )
    print(f"replaying {len(stream)} sensor readings; gateway outage in "
          f"[{burst_start:.0f}s, {burst_end:.0f}s)\n")

    run = (
        ContinuousQuery()
        .from_elements(stream)
        .window(sliding(10, 2))
        .aggregate("mean")
        .with_quality(0.05)
        .sampling_timeline(200)
        .run()
    )

    handler = run.handler
    bucket = 30.0
    slack_by_bucket: dict[int, list[float]] = {}
    for record in handler.adaptations:
        slack_by_bucket.setdefault(int(record.arrival_time // bucket), []).append(
            record.k_applied
        )
    max_slack = max(max(v) for v in slack_by_bucket.values())

    print("adaptive slack K over time (median per 30s bucket):")
    for index in sorted(slack_by_bucket):
        median = float(np.median(slack_by_bucket[index]))
        marker = " <- outage" if burst_start <= index * bucket < burst_end else ""
        print(f"  t={index * bucket:5.0f}s  K={median:6.2f}s "
              f"|{bar(median, max_slack)}{marker}")

    # Score the run and show how error evolved across the outage.
    truth = oracle_results(
        stream, sliding(10, 2), run.operator.aggregate
    )
    report = assess_quality(run.results, truth, threshold=0.05, keep_scores=True)
    print(f"\noverall: mean error {report.mean_error:.4f} (target 0.05), "
          f"recall {report.window_recall:.1%}")
    print("mean error per 90s of event time:")
    for start, error in error_timeline(report, bucket=90.0):
        print(f"  [{start:5.0f}s..) error={error:.4f} |{bar(error, 0.05, 20)}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=None,
                        help="event-time span in seconds")
    args = parser.parse_args()
    main(**({} if args.duration is None else {"duration": args.duration}))
