"""Live sports leaderboard under a hard freshness bound.

A stadium app shows each player's current top speed over the last 30
seconds.  The product requirement is freshness-first: results may never lag
more than one second, and within that budget accuracy should be as good as
possible — the *latency-budget* mode of the quality-driven operator.
The example contrasts it with a quality-first run of the same query.

Run:  python examples/latency_budget_leaderboard.py
"""

import numpy as np

from repro import ContinuousQuery, sliding
from repro.workloads import soccer_positions


def build_query(stream):
    return (
        ContinuousQuery()
        .from_elements(stream)
        .window(sliding(30, 5))
        .aggregate("max")
    )


def main(duration: float = 300.0) -> None:
    rng = np.random.default_rng(23)
    stream = soccer_positions(duration=duration, rate=400, rng=rng, n_players=10)
    print(f"replaying {len(stream)} speed samples from 10 players\n")

    budget = build_query(stream).with_latency_budget(1.0).run(assess=True, threshold=0.05)
    quality = build_query(stream).with_quality(0.01).run(assess=True)

    print(f"{'mode':<28} {'mean error':>10} {'p95 latency':>12} {'slack':>8}")
    for label, run in [
        ("latency budget <= 1s", budget),
        ("quality target <= 1%", quality),
    ]:
        print(
            f"{label:<28} {run.report.mean_error:>10.5f} "
            f"{run.latency.p95:>11.2f}s {run.handler.current_slack:>7.2f}s"
        )

    # Every slack the budget mode ever applied stayed within the bound.
    worst = max(record.k_applied for record in budget.handler.adaptations)
    print(f"\nlargest slack ever applied in budget mode: {worst:.2f}s (bound 1.0s)")

    # Render the final leaderboard from the budget-mode results.
    latest = {}
    for result in budget.results:
        if not result.flushed:
            latest[result.key] = result
    print("\ntop speed over the last 30s window (freshness-first view):")
    board = sorted(latest.values(), key=lambda r: r.value, reverse=True)
    for rank, result in enumerate(board, start=1):
        print(f"  {rank:>2}. {result.key:<10} {result.value:5.2f} m/s")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=None,
                        help="event-time span in seconds")
    args = parser.parse_args()
    main(**({} if args.duration is None else {"duration": args.duration}))
